"""Sketch baselines: the basic AGMS sketch [2, 3] and the skimmed sketch [32].

These are the comparison methods of the paper's section 5 experiments.
Joinable sketches must share the joined attribute's :class:`SignFamily`;
space is accounted in atomic sketches, directly comparable to cosine
coefficients.
"""

from .basic import (
    AGMSSketch,
    estimate_join_size,
    estimate_join_size_with_spread,
    estimate_multijoin_size,
    estimate_self_join_size,
    make_sketch_families,
    median_of_means,
    split_budget,
)
from .hashing import SignFamily
from .partitioned import PartitionedSketch, equi_mass_partition
from .partitioned import estimate_join_size as estimate_join_size_partitioned
from .skimmed import (
    SkimmedJoinEstimate,
    estimate_frequencies,
    estimate_join_size_skimmed,
    estimate_multijoin_size_skimmed,
    skim_dense_frequencies,
    skim_threshold,
)

__all__ = [
    "AGMSSketch",
    "estimate_join_size",
    "estimate_join_size_with_spread",
    "estimate_multijoin_size",
    "estimate_self_join_size",
    "make_sketch_families",
    "median_of_means",
    "split_budget",
    "SignFamily",
    "PartitionedSketch",
    "equi_mass_partition",
    "estimate_join_size_partitioned",
    "SkimmedJoinEstimate",
    "estimate_frequencies",
    "estimate_join_size_skimmed",
    "estimate_multijoin_size_skimmed",
    "skim_dense_frequencies",
    "skim_threshold",
]
