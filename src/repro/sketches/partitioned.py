"""Dobra et al.'s domain-partitioned sketches [9].

The third sketch method the paper discusses (sections 2 and 5): "first
partition the underlying join attribute domains and then estimate the join
size of each individual sub-domain using the sketch".  The estimator is a
sum of independent per-partition AGMS estimates; with a good partition the
per-partition self-join masses (which drive sketch variance) are far
smaller than the global ones, so the summed estimate is tighter at equal
total space.

The paper excludes it from its comparisons because it "requires a priori
knowledge of the data distributions (to find a good partition)" — exactly
what this module makes explicit: :func:`equi_mass_partition` derives
boundaries from a pilot frequency vector, and :class:`PartitionedSketch`
will not build without boundaries.  The bench
``benchmarks/bench_partitioned_ablation.py`` quantifies how much that
prior knowledge buys.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from .basic import AGMSSketch, median_of_means, split_budget
from .hashing import SignFamily


def equi_mass_partition(pilot_counts: NDArray[Any], num_partitions: int) -> NDArray[Any]:
    """Boundaries splitting the domain into ~equal-mass contiguous ranges.

    ``pilot_counts`` is the a-priori distribution knowledge Dobra's method
    assumes (e.g. yesterday's frequencies).  Returns ``num_partitions + 1``
    increasing indices ``b_0 = 0 < b_1 < ... = n``; partition ``p`` covers
    domain indices ``[b_p, b_{p+1})``.
    """
    pilot_counts = np.asarray(pilot_counts, dtype=float)
    if pilot_counts.ndim != 1:
        raise ValueError("pilot counts must be a 1-d frequency vector")
    n = pilot_counts.shape[0]
    if not 1 <= num_partitions <= n:
        raise ValueError(f"partition count must be in [1, {n}], got {num_partitions}")
    total = pilot_counts.sum()
    if total <= 0:
        # no information: fall back to equi-width
        return np.linspace(0, n, num_partitions + 1).astype(np.int64)
    cumulative = np.cumsum(pilot_counts)
    targets = total * np.arange(1, num_partitions) / num_partitions
    inner = np.searchsorted(cumulative, targets, side="left") + 1
    boundaries = np.concatenate([[0], inner, [n]])
    # enforce strict monotonicity (heavy single values can collapse cuts)
    for i in range(1, len(boundaries)):
        boundaries[i] = max(boundaries[i], boundaries[i - 1] + 1)
    boundaries = np.minimum(boundaries, n)
    # trailing duplicates mean fewer effective partitions; dedupe keeps the
    # estimator correct (empty partitions contribute zero)
    return np.unique(boundaries).astype(np.int64)


class PartitionedSketch:
    """One AGMS sketch per contiguous sub-domain (Dobra et al. [9]).

    Parameters
    ----------
    boundaries:
        Partition boundaries over the unified join domain, as produced by
        :func:`equi_mass_partition`.  Joinable sketches must share both the
        boundaries and the per-partition sign families (build both sides
        with the same ``seed``).
    budget:
        Total atomic sketches across all partitions; split evenly.
    """

    # Derived from ``boundaries`` in __init__; never part of checkpoints.
    _checkpoint_exempt = ("num_partitions",)

    def __init__(
        self,
        boundaries: Sequence[int],
        budget: int,
        seed: int,
        num_medians: int | None = None,
    ) -> None:
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        if self.boundaries.ndim != 1 or self.boundaries.shape[0] < 2:
            raise ValueError("at least one partition is required")
        if self.boundaries[0] != 0 or np.any(np.diff(self.boundaries) <= 0):
            raise ValueError("boundaries must start at 0 and strictly increase")
        self.num_partitions = self.boundaries.shape[0] - 1
        per_partition = budget // self.num_partitions
        if per_partition < 1:
            raise ValueError(
                f"budget {budget} cannot give every one of {self.num_partitions} "
                "partitions an atomic sketch"
            )
        self.seed = seed
        s1, s2 = split_budget(per_partition, num_medians)
        self._s1, self._s2 = s1, s2
        self.sketches: list[AGMSSketch] = []
        for p in range(self.num_partitions):
            width = int(self.boundaries[p + 1] - self.boundaries[p])
            family = SignFamily(width, s1 * s2, seed=seed * 8191 + p)
            self.sketches.append(AGMSSketch(family, s1, s2))

    @property
    def domain_size(self) -> int:
        return int(self.boundaries[-1])

    @property
    def count(self) -> int:
        return sum(sk.count for sk in self.sketches)

    @property
    def num_atomic_sketches(self) -> int:
        """Space in the paper's units (total across partitions)."""
        return sum(sk.num_atomic_sketches for sk in self.sketches)

    def partition_of(self, index: int) -> int:
        """Partition number holding a domain index."""
        if not 0 <= index < self.domain_size:
            raise ValueError(f"index {index} outside domain [0, {self.domain_size})")
        return int(np.searchsorted(self.boundaries, index, side="right") - 1)

    def update(self, index: int, weight: int = 1) -> None:
        """Route one arrival/deletion to its partition's sketch."""
        p = self.partition_of(index)
        self.sketches[p].update(int(index - self.boundaries[p]), weight=weight)

    def update_batch(self, indices: NDArray[Any], weight: int = 1) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        partitions = np.searchsorted(self.boundaries, indices, side="right") - 1
        for p in range(self.num_partitions):
            mask = partitions == p
            if mask.any():
                self.sketches[p].update_batch(
                    indices[mask] - self.boundaries[p], weight=weight
                )

    def state_dict(self) -> dict[str, Any]:
        """Full mutable state, including the partition structure.

        Boundaries are part of the state (not just the per-partition
        atoms) because they are derived from a pilot distribution at
        registration time — a restored engine re-registers the query
        against *current* counts and would pick different cuts, so
        :meth:`load_state` must be able to rebuild the exact partition
        geometry the checkpointed sketch was using.
        """
        return {
            "boundaries": self.boundaries.copy(),
            "seed": self.seed,
            "s1": self._s1,
            "s2": self._s2,
            "sketches": [sk.state_dict() for sk in self.sketches],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`, in place.

        Rebuilds the partition structure (boundaries, sign families, one
        sub-sketch per partition) and then restores every sub-sketch's
        atoms, so the object ends up indistinguishable from the one that
        was checkpointed while keeping its identity for any estimate
        closures holding a reference to it.
        """
        boundaries = np.asarray(state["boundaries"], dtype=np.int64)
        if boundaries.ndim != 1 or boundaries.shape[0] < 2:
            raise ValueError("checkpointed boundaries are not a valid partition")
        if boundaries[0] != 0 or np.any(np.diff(boundaries) <= 0):
            raise ValueError("checkpointed boundaries must start at 0 and increase")
        s1, s2 = int(state["s1"]), int(state["s2"])
        if s1 < 1 or s2 < 1:
            raise ValueError("checkpointed sketch geometry must be positive")
        num_partitions = boundaries.shape[0] - 1
        if len(state["sketches"]) != num_partitions:
            raise ValueError(
                f"checkpoint holds {len(state['sketches'])} partition sketches "
                f"for {num_partitions} partitions"
            )
        self.boundaries = boundaries
        self.num_partitions = num_partitions
        self.seed = int(state["seed"])
        self._s1, self._s2 = s1, s2
        self.sketches = []
        for p, sub_state in enumerate(state["sketches"]):
            width = int(boundaries[p + 1] - boundaries[p])
            family = SignFamily(width, s1 * s2, seed=self.seed * 8191 + p)
            sub = AGMSSketch(family, s1, s2)
            sub.load_state(sub_state)
            self.sketches.append(sub)

    @classmethod
    def from_counts(
        cls,
        counts: NDArray[Any],
        boundaries: Sequence[int],
        budget: int,
        seed: int,
        num_medians: int | None = None,
    ) -> "PartitionedSketch":
        """Build from a frequency vector in one pass."""
        counts = np.asarray(counts, dtype=float)
        sketch = cls(boundaries, budget, seed, num_medians)
        if counts.shape != (sketch.domain_size,):
            raise ValueError(
                f"counts shape {counts.shape} != ({sketch.domain_size},)"
            )
        for p in range(sketch.num_partitions):
            lo, hi = int(sketch.boundaries[p]), int(sketch.boundaries[p + 1])
            family = sketch.sketches[p].families[0]
            sketch.sketches[p] = AGMSSketch.from_counts(
                family, counts[lo:hi], sketch._s1, sketch._s2
            )
        return sketch

    def compatible_with(self, other: "PartitionedSketch") -> bool:
        return (
            np.array_equal(self.boundaries, other.boundaries)
            and self.seed == other.seed
            and self._s1 == other._s1
            and self._s2 == other._s2
        )


def estimate_join_size(a: PartitionedSketch, b: PartitionedSketch) -> float:
    """Dobra's estimate: the sum of the per-partition AGMS estimates."""
    if not a.compatible_with(b):
        raise ValueError(
            "partitioned sketches must share boundaries and sign families"
        )
    total = 0.0
    for sk_a, sk_b in zip(a.sketches, b.sketches):
        total += median_of_means(sk_a.atoms * sk_b.atoms, a._s1, a._s2)
    return total
