"""The basic AGMS ("tug-of-war") sketch of Alon et al. [2, 3].

An *atomic sketch* is the random linear projection
``X = sum_v f(v) * xi(v)`` of a stream's frequency vector onto 4-wise
independent ±1 variables.  For two streams sharing the same ``xi`` family,
``E[X1 * X2]`` equals the equi-join size; variance is tamed by averaging
``s1`` independent atomic sketches and taking the median of ``s2`` such
group means (the paper's "averaging and selecting the group median").

Multi-attribute relations (needed for the paper's multi-join chain queries,
following Dobra et al. [9] / Alon et al. [3]) use one independent sign
family per join attribute and project onto the *product* of the signs:
``X = sum_t prod_j xi_j(t_j)``; the product of the relations' atomic
sketches is then an unbiased estimator of the chain-join size.

Space accounting follows the paper: the size of a sketch is its number of
atomic sketches (``s1 * s2``), directly comparable to a cosine synopsis'
number of coefficients.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain
from ..fastpath import agms_update_1d
from .hashing import SignFamily


def split_budget(budget: int, num_medians: int | None = None) -> tuple[int, int]:
    """Split an atomic-sketch budget into (means ``s1``, medians ``s2``).

    The paper fixes total space and leaves the geometry free; the customary
    choice is a small odd number of median groups.  We default to 5 groups,
    dropping to 3 / 1 for very small budgets where median groups would
    starve the averaging.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if num_medians is None:
        if budget >= 100:
            num_medians = 5
        elif budget >= 30:
            num_medians = 3
        else:
            num_medians = 1
    if num_medians < 1 or num_medians > budget:
        raise ValueError("median group count must be in [1, budget]")
    if num_medians % 2 == 0:
        num_medians -= 1
    return budget // num_medians, num_medians


class AGMSSketch:
    """A grid of ``s1 x s2`` atomic sketches over one or more attributes.

    Parameters
    ----------
    families:
        One :class:`SignFamily` per attribute of the relation.  All families
        must have ``s1 * s2`` functions.  Joinable sketches must share the
        family of the joined attribute.
    num_means / num_medians:
        The averaging / median group geometry (``s1``, ``s2``).
    """

    # Structural parameters: a restored sketch is always constructed with the
    # same spec (and seed) first, so only the atoms travel in checkpoints.
    _checkpoint_exempt = ("families", "num_means", "num_medians")

    def __init__(
        self,
        families: Sequence[SignFamily] | SignFamily,
        num_means: int,
        num_medians: int,
    ) -> None:
        if isinstance(families, SignFamily):
            families = [families]
        self.families: tuple[SignFamily, ...] = tuple(families)
        if not self.families:
            raise ValueError("at least one sign family is required")
        if num_means < 1 or num_medians < 1:
            raise ValueError("num_means and num_medians must be >= 1")
        self.num_means = num_means
        self.num_medians = num_medians
        size = num_means * num_medians
        for fam in self.families:
            if fam.num_functions != size:
                raise ValueError(
                    f"family has {fam.num_functions} functions, sketch needs {size}"
                )
        self.atoms = np.zeros(size, dtype=float)
        self._count = 0

    # ------------------------------------------------------------------ #

    @property
    def ndim(self) -> int:
        return len(self.families)

    @property
    def count(self) -> int:
        """Live tuple count (insertions minus deletions)."""
        return self._count

    @property
    def num_atomic_sketches(self) -> int:
        """The paper's space unit for sketches."""
        return self.atoms.shape[0]

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def _batch_signs(self, rows: NDArray[Any]) -> NDArray[Any]:
        """Product of per-attribute signs for a batch: ``(S, B)`` ±1 ints."""
        prod: NDArray[Any] | None = None
        for j, fam in enumerate(self.families):
            s = fam.signs(rows[:, j])
            prod = s.astype(np.int64) if prod is None else prod * s
        assert prod is not None
        return prod

    def update(self, indices: Sequence[int] | int, weight: int = 1) -> None:
        """Process one arrival (``weight=1``) or deletion (``weight=-1``).

        ``indices`` are domain indices (one per attribute).  Sketches are
        linear, so deletion is just a negative-weight update — the property
        the paper credits for sketch updatability.
        """
        if np.isscalar(indices):
            indices = [int(indices)]  # type: ignore[list-item]
        rows = np.asarray(indices, dtype=np.int64)[None, :]
        if rows.shape[1] != self.ndim:
            raise ValueError(f"expected {self.ndim} attribute indices, got {rows.shape[1]}")
        self.atoms += weight * self._batch_signs(rows)[:, 0]
        self._count += weight

    def update_batch(self, rows: NDArray[Any], weight: int = 1, chunk: int = 4096) -> None:
        """Process a batch of arrivals/deletions of domain-index tuples.

        Single-attribute batches route through the compiled
        :func:`repro.fastpath.agms_update_1d` kernel when the numba
        backend is active (skipping the ``(S, B)`` sign intermediates);
        otherwise the chunked numpy path below runs.  Both accumulate the
        same sums, so the choice is invisible to estimates.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim == 1:
            rows = rows[:, None]
        if rows.shape[1] != self.ndim:
            raise ValueError(f"rows must have {self.ndim} columns, got {rows.shape[1]}")
        if self.ndim == 1 and rows.shape[0]:
            fam = self.families[0]
            idx = rows[:, 0]
            if int(idx.min()) < 0 or int(idx.max()) >= fam.domain_size:
                raise ValueError("index outside the hashed domain")
            if agms_update_1d(fam.coefficients, idx, float(weight), self.atoms):
                self._count += weight * rows.shape[0]  # pragma: no cover - requires numba
                return  # pragma: no cover - requires numba
        for start in range(0, rows.shape[0], chunk):
            part = rows[start : start + chunk]
            self.atoms += weight * self._batch_signs(part).sum(axis=1)
        self._count += weight * rows.shape[0]

    def state_dict(self) -> dict[str, Any]:
        """Mutable state only (atoms + count), for engine checkpoints."""
        return {"atoms": self.atoms.copy(), "count": self._count}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`, in place."""
        atoms = np.asarray(state["atoms"], dtype=float)
        if atoms.shape != self.atoms.shape:
            raise ValueError(
                f"checkpointed sketch has {atoms.shape[0]} atomic sketches, "
                f"this sketch holds {self.atoms.shape[0]}"
            )
        self.atoms = atoms.copy()
        self._count = int(state["count"])

    @classmethod
    def from_counts(
        cls,
        families: Sequence[SignFamily] | SignFamily,
        counts: NDArray[Any],
        num_means: int,
        num_medians: int,
    ) -> "AGMSSketch":
        """Build a sketch from a joint frequency tensor in one pass.

        Equivalent to streaming every tuple through :meth:`update`, computed
        by contracting the count tensor with each attribute's sign matrix.
        """
        sketch = cls(families, num_means, num_medians)
        counts = np.asarray(counts, dtype=float)
        expected = tuple(f.domain_size for f in sketch.families)
        if counts.shape != expected:
            raise ValueError(f"counts shape {counts.shape} does not match domains {expected}")
        # Contract the value axes against the attributes' (S, n_j) sign
        # matrices one by one, keeping S as a shared leading axis.  Each
        # contraction consumes the current axis 1, which is always the next
        # attribute in declaration order.
        tensor = counts[None, ...]  # (1, n_1, ..., n_d) broadcast over S
        for fam in sketch.families:
            signs = fam.sign_matrix().astype(float)  # (S, n_j)
            if tensor.shape[0] == 1:
                tensor = np.einsum("j...,sj->s...", tensor[0], signs)
            else:
                tensor = np.einsum("sj...,sj->s...", tensor, signs)
        sketch.atoms = tensor.reshape(sketch.num_atomic_sketches).astype(float).copy()
        sketch._count = int(round(counts.sum()))
        return sketch

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def _grouped(self, values: NDArray[Any]) -> NDArray[Any]:
        return values.reshape(self.num_medians, self.num_means)

    def compatible_with(self, other: "AGMSSketch", self_axis: int, other_axis: int) -> bool:
        """Whether a join on the given attribute axes is well-defined."""
        return (
            self.num_means == other.num_means
            and self.num_medians == other.num_medians
            and self.families[self_axis].compatible_with(other.families[other_axis])
        )


def median_of_means(products: NDArray[Any], num_means: int, num_medians: int) -> float:
    """The AGMS estimate: median over ``s2`` groups of ``s1``-means."""
    if products.shape[0] != num_means * num_medians:
        raise ValueError("product vector does not match the sketch geometry")
    groups = products.reshape(num_medians, num_means)
    return float(np.median(groups.mean(axis=1)))


def estimate_self_join_size(sketch: AGMSSketch) -> float:
    """Estimate the self-join size (second frequency moment) of a stream.

    ``E[X^2] = sum_v f(v)^2`` for each atomic sketch (Alon et al. [2]).
    """
    if sketch.ndim != 1:
        raise ValueError("self-join estimation expects a single-attribute sketch")
    return median_of_means(sketch.atoms**2, sketch.num_means, sketch.num_medians)


def estimate_join_size(a: AGMSSketch, b: AGMSSketch) -> float:
    """Estimate a single equi-join size from two sketches sharing a family."""
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("use estimate_multijoin_size for multi-attribute sketches")
    if not a.compatible_with(b, 0, 0):
        raise ValueError("sketches do not share a sign family; joins are undefined")
    return median_of_means(a.atoms * b.atoms, a.num_means, a.num_medians)


def estimate_join_size_with_spread(a: AGMSSketch, b: AGMSSketch) -> tuple[float, float]:
    """Join estimate plus the dispersion of its median groups.

    Returns ``(estimate, spread)`` where ``spread`` is the standard
    deviation of the ``s2`` group means whose median is the estimate — a
    free, data-driven uncertainty signal the grid already paid for.  A
    spread comparable to (or exceeding) the estimate itself flags the
    regimes where the paper reports sketches breaking down.
    """
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("use estimate_multijoin_size for multi-attribute sketches")
    if not a.compatible_with(b, 0, 0):
        raise ValueError("sketches do not share a sign family; joins are undefined")
    groups = (a.atoms * b.atoms).reshape(a.num_medians, a.num_means).mean(axis=1)
    return float(np.median(groups)), float(np.std(groups))


def estimate_multijoin_size(sketches: Sequence[AGMSSketch]) -> float:
    """Estimate a multi-join chain query from per-relation sketches.

    The caller is responsible for having built the sketches so that every
    join predicate's two attribute slots share a sign family and every
    attribute of every relation participates in exactly one predicate (the
    paper's chain-query shape); then ``E[prod_i X_i]`` is the join size.
    """
    if len(sketches) < 2:
        raise ValueError("a join needs at least two sketches")
    first = sketches[0]
    products = np.ones_like(first.atoms)
    for sk in sketches:
        if (
            sk.num_means != first.num_means
            or sk.num_medians != first.num_medians
        ):
            raise ValueError("all sketches must share the same (s1, s2) geometry")
        products = products * sk.atoms
    return median_of_means(products, first.num_means, first.num_medians)


def slice_sketch(sketch: AGMSSketch, num_means: int, num_medians: int) -> AGMSSketch:
    """A smaller sketch using the first ``s1*s2`` atomic sketches of a big one.

    Valid because atomic sketches are mutually independent and the
    polynomial hash family is a deterministic prefix-stable function of its
    seed: ``SignFamily(n, S', seed)`` generates exactly the first ``S'``
    functions of ``SignFamily(n, S, seed)``.  Lets the experiment harness
    sweep space budgets from a single maintained sketch, the same way
    :meth:`CosineSynopsis.truncated` serves the cosine side.
    """
    size = num_means * num_medians
    if size > sketch.num_atomic_sketches:
        raise ValueError(
            f"cannot grow a sketch ({size} > {sketch.num_atomic_sketches} atoms)"
        )
    families = [
        SignFamily(f.domain_size, size, seed=f.seed) for f in sketch.families
    ]
    smaller = AGMSSketch(families, num_means, num_medians)
    smaller.atoms = sketch.atoms[:size].copy()
    smaller._count = sketch._count
    return smaller


def make_sketch_families(
    domains: Sequence[Domain], budget: int, seed: int, num_medians: int | None = None
) -> tuple[dict[int, SignFamily], int, int]:
    """One shared sign family per join attribute under a space budget.

    Returns ``(families_by_attribute, s1, s2)``; helper for the experiment
    harness, which builds chain queries where attribute ``i`` is shared by
    relations ``i`` and ``i+1``.
    """
    s1, s2 = split_budget(budget, num_medians)
    size = s1 * s2
    families = {
        i: SignFamily(dom.size, size, seed=seed * 7919 + i) for i, dom in enumerate(domains)
    }
    return families, s1, s2
