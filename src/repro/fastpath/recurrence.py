"""Numpy kernels for the cosine-basis hot path.

The reference implementation (:func:`repro.core.basis.basis_matrix`)
evaluates ``phi_k(x) = sqrt(2) cos(k pi x)`` with one transcendental call
per ``(k, x)`` pair — ``m * B`` cosines for an order-``m`` table over a
``B``-row batch.  The fast path exploits that the rows satisfy the
Chebyshev-style three-term recurrence

    cos((k+1) pi x) = 2 cos(pi x) * cos(k pi x) - cos((k-1) pi x)

so the whole ``(m, B)`` table needs exactly ``B`` cosine evaluations (the
``k = 1`` row); every further row is one fused multiply-subtract over the
batch, which is memory-bandwidth-bound rather than libm-bound.

Normalization is folded into the seeds: the recurrence is linear and
homogeneous, so running it on ``r_k = sqrt(2) cos(k pi x)`` directly
(seeds ``r_1 = sqrt(2) t``, ``r_2 = 2 t r_1 - sqrt(2)``) yields the
normalized rows with no final scaling pass.  Row 0 is written as the
constant 1 afterwards.

Numerical drift of the recurrence against direct evaluation is bounded by
the parity tests (``tests/fastpath/``) at <= 1e-9 for every order the
synopses can reach (orders are clamped to the domain size, and the drift
stays below 1e-8 even at order 20000).

Strategy selection: the recurrence wins only when each row update touches
enough columns to amortize the python-level loop — measured breakeven is
around 64 batch columns on one core.  Below that (notably the per-tuple
``B = 1`` path) a direct vectorized ``np.cos`` block is used instead, so
:func:`phi_block_numpy` is never slower than the reference.
"""

from __future__ import annotations

from typing import Any

import math

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "RECURRENCE_MIN_COLS",
    "SQRT2",
    "phi_block_numpy",
    "phi_block_reference",
]

#: Normalization factor of the non-constant basis functions (identical in
#: value to :data:`repro.core.basis.SQRT2`; duplicated so this package
#: imports nothing from ``repro.core``).
SQRT2 = math.sqrt(2.0)

#: Minimum batch columns for the recurrence to beat direct ``np.cos``;
#: below this the direct block is used (measured breakeven on one core).
RECURRENCE_MIN_COLS = 64


def _prepare(
    order: int, positions: NDArray[Any], out: NDArray[Any] | None
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Validate arguments and return ``(positions, out)`` as float64 arrays."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    if positions.ndim != 1:
        raise ValueError(f"positions must be 1-d, got shape {positions.shape}")
    if out is None:
        out = np.empty((order, positions.shape[0]), dtype=np.float64)
    elif out.shape != (order, positions.shape[0]) or out.dtype != np.float64:
        raise ValueError(
            f"out must be float64 of shape {(order, positions.shape[0])}, "
            f"got {out.dtype} {out.shape}"
        )
    return positions, out


def _phi_direct(order: int, positions: NDArray[Any], out: NDArray[Any]) -> NDArray[Any]:
    """Direct vectorized evaluation — one ``np.cos`` per table entry.

    Bit-identical to the reference ``basis_matrix`` (same operation order),
    so small-batch calls routed here cannot perturb any answer.
    """
    k = np.arange(order, dtype=np.float64)[:, None]
    np.multiply(k * np.pi, positions[None, :], out=out)
    np.cos(out, out=out)
    out *= SQRT2
    out[0] = 1.0
    return out


def _phi_recurrence(order: int, positions: NDArray[Any], out: NDArray[Any]) -> NDArray[Any]:
    """Three-term recurrence — one ``np.cos`` call total, then FMA rows."""
    t = np.cos(np.pi * positions)
    np.multiply(SQRT2, t, out=out[1])
    t2 = 2.0 * t
    if order > 2:
        np.multiply(t2, out[1], out=out[2])
        out[2] -= SQRT2
    for k in range(3, order):
        np.multiply(t2, out[k - 1], out=out[k])
        out[k] -= out[k - 2]
    out[0] = 1.0
    return out


def phi_block_numpy(
    order: int, positions: NDArray[Any], out: NDArray[Any] | None = None
) -> NDArray[Any]:
    """Basis table ``P[k, b] = phi_k(positions[b])`` via the fast numpy path.

    Returns a C-contiguous float64 array of shape ``(order, len(positions))``
    (written into ``out`` when given).  Uses the Chebyshev recurrence when
    the batch is wide enough to amortize it, the direct block otherwise.
    """
    positions, out = _prepare(order, positions, out)
    if order <= 2 or positions.shape[0] < RECURRENCE_MIN_COLS:
        return _phi_direct(order, positions, out)
    return _phi_recurrence(order, positions, out)


def phi_block_reference(
    order: int, positions: NDArray[Any], out: NDArray[Any] | None = None
) -> NDArray[Any]:
    """The 1.5.0 per-entry evaluation, kept as the parity/benchmark baseline.

    Bit-identical to ``basis_matrix(np.arange(order), positions)`` — this is
    what the CI bench gate measures the recurrence speedup against.
    """
    positions, out = _prepare(order, positions, out)
    return _phi_direct(order, positions, out)
