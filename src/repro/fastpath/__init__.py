"""Hardware-limited kernels for coefficient maintenance.

``repro.fastpath`` is the blessed home for hot-loop arithmetic: the
Chebyshev-recurrence cosine basis (one transcendental call per batch
instead of one per table entry), the optional numba-compiled kernels, and
the backend switch that picks between them at import time.  The synopsis,
sketch, and stream layers call :func:`phi_block` / :func:`agms_update_1d`
and stay free of per-order python loops themselves — the ``repro.analysis``
REP006 rule enforces that split.

See ``docs/PERFORMANCE.md`` for the recurrence math, backend selection
rules, and how the CI benchmark gate holds this layer to its >= 5x floor.
"""

from .backend import (
    BACKENDS,
    agms_update_1d,
    available_backends,
    backend_name,
    describe,
    phi_block,
    register_backend_gauge,
    set_backend,
)
from .recurrence import RECURRENCE_MIN_COLS, SQRT2, phi_block_numpy, phi_block_reference

__all__ = [
    "BACKENDS",
    "RECURRENCE_MIN_COLS",
    "SQRT2",
    "agms_update_1d",
    "available_backends",
    "backend_name",
    "describe",
    "phi_block",
    "phi_block_numpy",
    "phi_block_reference",
    "register_backend_gauge",
    "set_backend",
]
