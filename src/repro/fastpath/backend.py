"""Backend selection for the fast-path kernels.

Exactly one backend is active per process:

``"numba"``
    The compiled kernels from :mod:`repro.fastpath._numba`.  Selected at
    import time when numba is importable; never a hard dependency.
``"numpy"``
    The vectorized recurrence from :mod:`repro.fastpath.recurrence` — the
    fallback (and the path every CI run exercises).
``"reference"``
    The 1.5.0 per-entry evaluation, bit-identical to
    ``repro.core.basis.basis_matrix``.  Kept selectable so benchmarks and
    parity tests can A/B the fast path against the exact seed behavior
    in the same process (``benchmarks/bench_fastpath.py`` measures its
    speedup floor this way).

The ``REPRO_FASTPATH`` environment variable overrides the automatic
choice (``auto`` / empty keeps it); requesting ``numba`` without numba
installed falls back to ``numpy`` rather than failing, because ingest
must not break on a missing optional dependency.

Which backend won is observable: :func:`register_backend_gauge` registers
the ``repro_fastpath_backend`` gauge (one time series per backend label,
1 on the active one) into any telemetry registry, and every registered
family is kept in sync when tests flip backends via :func:`set_backend`.

This module deliberately imports nothing from ``repro.core`` or
``repro.obs`` — it sits below both, so the synopsis and telemetry layers
can depend on it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import os

import numpy as np
from numpy.typing import NDArray

from . import _numba
from .recurrence import phi_block_numpy, phi_block_reference

if TYPE_CHECKING:
    from ..obs.metrics import MetricFamily, MetricsRegistry

__all__ = [
    "BACKENDS",
    "available_backends",
    "backend_name",
    "set_backend",
    "phi_block",
    "agms_update_1d",
    "register_backend_gauge",
    "describe",
]

#: Every backend name this module understands, preference order first.
BACKENDS: tuple[str, ...] = ("numba", "numpy", "reference")

#: Gauge families registered via :func:`register_backend_gauge`, kept in
#: sync whenever the active backend changes.
_GAUGE_FAMILIES: list[Any] = []


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run in this process."""
    return tuple(b for b in BACKENDS if b != "numba" or _numba.HAVE_NUMBA)


def _initial_backend() -> str:
    """Import-time choice: env override first, then numba-if-present."""
    automatic = "numba" if _numba.HAVE_NUMBA else "numpy"
    requested = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if requested in ("", "auto"):
        return automatic
    if requested == "numba" and not _numba.HAVE_NUMBA:
        return "numpy"
    if requested in BACKENDS:
        return requested
    raise ValueError(
        f"REPRO_FASTPATH={requested!r} is not a known backend; "
        f"choose one of {', '.join(BACKENDS)} or 'auto'"
    )


_backend: str = _initial_backend()


def backend_name() -> str:
    """Name of the active backend (``numba`` / ``numpy`` / ``reference``)."""
    return _backend


def set_backend(name: str) -> str:
    """Activate a backend by name; returns the previously active one.

    Requesting ``"numba"`` when numba is not importable raises, unlike the
    import-time selection which silently falls back — an explicit request
    failing silently would invalidate whatever comparison the caller is
    setting up.
    """
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose one of {', '.join(BACKENDS)}")
    if name == "numba" and not _numba.HAVE_NUMBA:
        raise RuntimeError("the numba backend was requested but numba is not importable")
    previous = _backend
    _backend = name
    for family in _GAUGE_FAMILIES:
        _sync_gauge(family)
    return previous


def _phi_block_numba(
    order: int, positions: NDArray[Any], out: NDArray[Any] | None
) -> NDArray[Any]:  # pragma: no cover - requires numba
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    if out is None:
        out = np.empty((order, positions.shape[0]), dtype=np.float64)
    _numba.phi_block_kernel(order, positions, out)
    return out


def phi_block(order: int, positions: NDArray[Any], out: NDArray[Any] | None = None) -> NDArray[Any]:
    """Basis table ``P[k, b] = phi_k(positions[b])`` on the active backend.

    The drop-in fast replacement for
    ``basis_matrix(np.arange(order), positions)`` — every coefficient
    maintenance path routes through here.
    """
    if _backend == "numpy":
        return phi_block_numpy(order, positions, out)
    if _backend == "reference":
        return phi_block_reference(order, positions, out)
    return _phi_block_numba(order, positions, out)  # pragma: no cover - requires numba


def agms_update_1d(
    coeffs: NDArray[Any], indices: NDArray[Any], weight: float, atoms: NDArray[Any]
) -> bool:
    """Compiled single-attribute AGMS batch update, if available.

    Accumulates ``weight * sum_b xi_s(indices[b])`` into ``atoms`` in one
    pass and returns ``True``; returns ``False`` when no compiled backend
    is active, in which case the caller runs its numpy path.  ``coeffs``
    is the sign family's ``(S, 4)`` polynomial table.
    """
    if _backend != "numba" or _numba.agms_update_kernel is None:
        return False
    _numba.agms_update_kernel(  # pragma: no cover - requires numba
        np.ascontiguousarray(coeffs, dtype=np.uint64),
        np.ascontiguousarray(indices, dtype=np.int64),
        float(weight),
        atoms,
    )
    return True  # pragma: no cover - requires numba


def _sync_gauge(family: MetricFamily) -> None:
    """Point one registered gauge family at the active backend."""
    for name in BACKENDS:
        family.labels(name).set(1.0 if name == _backend else 0.0)


def register_backend_gauge(registry: MetricsRegistry) -> None:
    """Expose the active backend through a telemetry registry.

    Registers the ``repro_fastpath_backend`` gauge family (one child per
    backend label, value 1 on the active one — the Prometheus idiom for
    an enum-valued fact).  ``registry`` is any
    :class:`repro.obs.metrics.MetricsRegistry`; it is passed in rather
    than imported so this module stays below the obs layer.
    """
    family = registry.gauge(
        "repro_fastpath_backend",
        "Active repro.fastpath kernel backend (1 on the selected label).",
        labelnames=("backend",),
    )
    if family not in _GAUGE_FAMILIES:
        _GAUGE_FAMILIES.append(family)
    _sync_gauge(family)


def describe() -> dict[str, Any]:
    """Diagnostic summary of the backend state (JSON-compatible)."""
    return {
        "backend": _backend,
        "available": list(available_backends()),
        "numba_importable": _numba.HAVE_NUMBA,
        "env_override": os.environ.get("REPRO_FASTPATH", "") or None,
    }
