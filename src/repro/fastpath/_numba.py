"""Optional numba-compiled kernels behind a gated import.

numba is *not* a dependency of this package: when it is importable the
kernels below are JIT-compiled and :mod:`repro.fastpath.backend` selects
the ``"numba"`` backend by default; when it is absent (the normal case —
the CI image deliberately ships without it) everything here degrades to
``None`` and the pure-numpy recurrence takes over at import time.  Which
way the coin fell is visible through the ``repro_fastpath_backend`` gauge
and ``repro.fastpath.describe()``.

The kernels mirror the numpy fast path exactly (same recurrence, same
seed folding), so the parity guarantees proven for the numpy path in
``tests/fastpath/`` transfer; they mainly buy back the python-level loop
over basis orders and the ``(S, B)`` sign intermediates of AGMS updates.
"""

from __future__ import annotations

from typing import Any

import math

import numpy as np
from numpy.typing import NDArray

__all__ = ["HAVE_NUMBA", "phi_block_kernel", "agms_update_kernel"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore[import-not-found]
except Exception:  # pragma: no cover - import error path is environment-dependent
    numba = None

HAVE_NUMBA = numba is not None

_SQRT2 = math.sqrt(2.0)
_MERSENNE_P = np.uint64((1 << 31) - 1)


if HAVE_NUMBA:  # pragma: no cover - numba absent in the pinned CI image

    @numba.njit(cache=True)
    def phi_block_kernel(order: int, positions: NDArray[Any], out: NDArray[Any]) -> None:
        """Chebyshev-recurrence basis table, one cos() per batch column."""
        cols = positions.shape[0]
        for b in range(cols):
            out[0, b] = 1.0
        if order > 1:
            for b in range(cols):
                out[1, b] = _SQRT2 * math.cos(math.pi * positions[b])
        if order > 2:
            for b in range(cols):
                t2 = 2.0 * math.cos(math.pi * positions[b])
                prev2 = _SQRT2
                prev1 = out[1, b]
                for k in range(2, order):
                    cur = t2 * prev1 - prev2
                    out[k, b] = cur
                    prev2 = prev1
                    prev1 = cur

    @numba.njit(cache=True)
    def agms_update_kernel(
        coeffs: NDArray[Any], indices: NDArray[Any], weight: float, atoms: NDArray[Any]
    ) -> None:
        """Single-attribute AGMS batch update without sign intermediates.

        ``coeffs`` is the sign family's ``(S, 4)`` uint64 polynomial table,
        ``indices`` the batch of domain indices; each atom accumulates
        ``weight * sum_b xi_s(indices[b])`` directly, skipping the
        ``(S, B)`` materialized sign matrix of the numpy path.
        """
        p = _MERSENNE_P
        one = np.uint64(1)
        for s in range(coeffs.shape[0]):
            c0 = coeffs[s, 0]
            c1 = coeffs[s, 1]
            c2 = coeffs[s, 2]
            c3 = coeffs[s, 3]
            total = 0
            for b in range(indices.shape[0]):
                x = np.uint64(indices[b])
                acc = (c0 * x + c1) % p
                acc = (acc * x + c2) % p
                acc = (acc * x + c3) % p
                total += 1 if (acc & one) else -1
            atoms[s] += weight * total

else:
    phi_block_kernel = None
    agms_update_kernel = None
