"""Real-life-like datasets standing in for the paper's section 5.3 data.

The paper evaluates on three real datasets we cannot ship:

* **Real data I** — Current Population Survey, Jan/Feb/Mar 2004
  (~134k-144k tuples; Age in [1,99], Education in [1,46]);
* **Real data II** — Survey of Income and Program Participation, 2001 and
  2004 (361k / 442k tuples; SSUSEQ in [1,50000], WHFNWGT in [1,9999],
  THEARN in [1,1500]);
* **Real data III** — DEC-PKT Internet traces, three hours of TCP and UDP
  packets (source/destination hosts in [0,2394] / [0,7327]).

Each generator below synthesizes data with the properties the paper
*credits for its results* (see DESIGN.md, "Substitutions"): CPS — a small
domain, smooth-ish marginals, and strong-but-imperfect positive correlation
between periods; SIPP — a huge, very smooth, near-uniform domain (SSUSEQ)
plus heavy-tailed monetary attributes; traffic — skewed, rough Zipfian host
popularity with hot host pairs.  Periods (months / years / hours) of the
same dataset are resampled around a shared base distribution, which is
exactly what makes them joinable with strong positive correlation.

Domain sizes default to reproduction scale and grow with ``scale=1.0`` to
the paper's figures.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain
from .zipf import zipf_probabilities


@dataclass(frozen=True)
class RealLikeRelation:
    """One generated stream relation: schema, domains, and joint counts."""

    name: str
    attributes: tuple[str, ...]
    domains: tuple[Domain, ...]
    counts: NDArray[Any]

    @property
    def size(self) -> int:
        return int(self.counts.sum())


def _jittered_sample(
    base: NDArray[Any], total: int, rng: np.random.Generator, jitter: float = 0.05
) -> NDArray[Any]:
    """Multinomial sample of ``total`` tuples around a jittered base pmf.

    The jitter models period-to-period drift (months of the CPS, years of
    the SIPP, hours of a trace): large shared structure, small private
    noise — strong but imperfect positive correlation.
    """
    noisy = base * np.exp(rng.normal(0.0, jitter, size=base.shape))
    noisy /= noisy.sum()
    flat = rng.multinomial(total, noisy.ravel())
    return flat.reshape(base.shape).astype(np.int64)


# --------------------------------------------------------------------- #
# Real data I: Current Population Survey
# --------------------------------------------------------------------- #

#: Paper tuple counts for the three months of real dataset I.
CPS_MONTH_SIZES = {1: 133_696, 2: 143_598, 3: 135_872}


def _cps_age_pmf(n_age: int) -> NDArray[Any]:
    """A population-pyramid age density over ``1..n_age``."""
    ages = np.arange(1, n_age + 1, dtype=float)
    pyramid = (
        0.40 * np.exp(-0.5 * ((ages - 25) / 14.0) ** 2)
        + 0.35 * np.exp(-0.5 * ((ages - 47) / 12.0) ** 2)
        + 0.25 * np.exp(-0.5 * ((ages - 70) / 15.0) ** 2)
    )
    return pyramid / pyramid.sum()


def _cps_education_given_age(n_age: int, n_edu: int) -> NDArray[Any]:
    """Conditional education pmf per age: rises with age then saturates."""
    ages = np.arange(1, n_age + 1, dtype=float)
    edus = np.arange(1, n_edu + 1, dtype=float)
    mean = 8.0 + 0.9 * np.minimum(ages, 30.0)  # schooling accumulates, then stops
    sigma = 6.0
    cond = np.exp(-0.5 * ((edus[None, :] - mean[:, None]) / sigma) ** 2)
    return cond / cond.sum(axis=1, keepdims=True)


def cps_like(
    month: int, rng: np.random.Generator, scale: float = 1.0
) -> RealLikeRelation:
    """One month of CPS-like (Age, Education) microdata.

    ``month`` is 1 (January), 2 (February) or 3 (March); the three months
    share a base joint distribution and differ by sampling jitter, mirroring
    consecutive survey waves.  ``scale`` multiplies the tuple counts (the
    domains are already small and are kept at paper size).
    """
    if month not in CPS_MONTH_SIZES:
        raise ValueError(f"month must be one of {sorted(CPS_MONTH_SIZES)}")
    n_age, n_edu = 99, 46
    joint = _cps_age_pmf(n_age)[:, None] * _cps_education_given_age(n_age, n_edu)
    total = max(1, int(CPS_MONTH_SIZES[month] * scale))
    counts = _jittered_sample(joint, total, rng)
    return RealLikeRelation(
        name=f"cps_month{month}",
        attributes=("Age", "Education"),
        domains=(Domain.integer_range(1, n_age), Domain.integer_range(1, n_edu)),
        counts=counts,
    )


# --------------------------------------------------------------------- #
# Real data II: Survey of Income and Program Participation
# --------------------------------------------------------------------- #

#: Paper tuple counts for the two SIPP waves of real dataset II.
SIPP_YEAR_SIZES = {2001: 361_046, 2004: 441_849}


def _sipp_domains(scale: float) -> tuple[int, int, int]:
    """(SSUSEQ, WHFNWGT, THEARN) domain sizes at the requested scale."""
    return (
        max(100, int(50_000 * scale)),
        max(50, int(9_999 * scale)),
        max(20, int(1_500 * scale)),
    )


def sipp_ssuseq(
    year: int, rng: np.random.Generator, scale: float = 0.1
) -> RealLikeRelation:
    """One SIPP wave projected on SSUSEQ (sample-unit sequence number).

    Sequence numbers are assigned nearly uniformly, with a mild linear
    attrition slope between waves — an extremely smooth, huge-domain
    distribution (the regime where the paper reports its largest wins,
    Figure 15).
    """
    if year not in SIPP_YEAR_SIZES:
        raise ValueError(f"year must be one of {sorted(SIPP_YEAR_SIZES)}")
    n_seq, _, _ = _sipp_domains(scale)
    positions = np.linspace(0.0, 1.0, n_seq)
    slope = 0.10 if year == 2001 else 0.16  # later waves lose later units
    base = 1.0 - slope * positions
    base /= base.sum()
    total = max(1, int(SIPP_YEAR_SIZES[year] * scale))
    counts = _jittered_sample(base, total, rng, jitter=0.02)
    return RealLikeRelation(
        name=f"sipp{year}_ssuseq",
        attributes=("SSUSEQ",),
        domains=(Domain.integer_range(1, n_seq),),
        counts=counts,
    )


def sipp_weight_earnings(
    year: int, rng: np.random.Generator, scale: float = 0.1
) -> RealLikeRelation:
    """One SIPP wave projected on (WHFNWGT, THEARN).

    Household weights follow a discretized log-normal; earned income is
    heavy-tailed with a mass of low earners; the two are mildly positively
    coupled (larger households carry larger weights and more earners).
    """
    if year not in SIPP_YEAR_SIZES:
        raise ValueError(f"year must be one of {sorted(SIPP_YEAR_SIZES)}")
    _, n_w, n_t = _sipp_domains(scale)

    w = np.arange(1, n_w + 1, dtype=float)
    w_pmf = np.exp(-0.5 * ((np.log(w) - np.log(0.35 * n_w)) / 0.5) ** 2) / w
    w_pmf /= w_pmf.sum()

    t = np.arange(1, n_t + 1, dtype=float)
    t_body = np.exp(-0.5 * ((np.log(t) - np.log(0.2 * n_t)) / 0.9) ** 2) / t
    # Low earners form a smooth pile-up toward the bottom of the range (the
    # survey codes income in coarse units starting at 1, so there is no
    # point mass — just a heavy left shoulder).
    t_low = np.exp(-t / (0.02 * n_t))
    t_pmf = 0.25 * t_low / t_low.sum() + 0.75 * t_body / t_body.sum()

    # A mild rank-rank coupling lifts the diagonal quadrants.
    rho = 0.3
    rw = (np.argsort(np.argsort(w_pmf))[::-1] / n_w)  # popularity quantile
    rt = (np.argsort(np.argsort(t_pmf))[::-1] / n_t)
    joint = np.outer(w_pmf, t_pmf) * (1.0 + rho * np.outer(rw - 0.5, rt - 0.5) * 4.0)
    joint = np.clip(joint, 0.0, None)
    joint /= joint.sum()

    total = max(1, int(SIPP_YEAR_SIZES[year] * scale))
    counts = _jittered_sample(joint, total, rng, jitter=0.04)
    return RealLikeRelation(
        name=f"sipp{year}_weight_earnings",
        attributes=("WHFNWGT", "THEARN"),
        domains=(Domain.integer_range(1, n_w), Domain.integer_range(1, n_t)),
        counts=counts,
    )


# --------------------------------------------------------------------- #
# Real data III: DEC-PKT Internet traffic traces
# --------------------------------------------------------------------- #

#: Relative sizes of the three trace hours (paper: 94/113/128 MB TCP).
TRAFFIC_HOUR_WEIGHTS = {1: 0.94, 2: 1.13, 3: 1.28}
#: UDP file proportions (21.4/21.4/26.9 MB).
TRAFFIC_UDP_WEIGHTS = {1: 0.214, 2: 0.214, 3: 0.269}


def _subnet_popularity(
    n_hosts: int, rng: np.random.Generator, num_subnets: int, roughness: float
) -> NDArray[Any]:
    """Piecewise-smooth host popularity: hot subnets over a mild background.

    Host identifiers in packet traces cluster by address block, so activity
    varies *smoothly with the host id* at subnet granularity — a handful of
    contiguous hot blocks over a low background — with per-host roughness on
    top.  (Popularity that is rough at the level of individual ids, e.g. a
    randomly permuted Zipf, would correspond to hosts being numbered in
    random order, which traces do not exhibit.)
    """
    positions = np.arange(n_hosts, dtype=float)
    pmf = np.full(n_hosts, 1.0)
    weights = zipf_probabilities(num_subnets, 1.0)[rng.permutation(num_subnets)]
    for w in weights:
        center = rng.uniform(0, n_hosts)
        width = rng.uniform(0.01, 0.06) * n_hosts
        pmf += w * n_hosts * np.exp(-0.5 * ((positions - center) / width) ** 2)
    pmf *= np.exp(rng.normal(0.0, roughness, size=n_hosts))
    return pmf / pmf.sum()


def _traffic_host_pmfs(
    n_hosts: int, rng: np.random.Generator
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Source and destination host popularity (hot-subnet structure)."""
    src = _subnet_popularity(n_hosts, rng, num_subnets=8, roughness=0.3)
    dst = _subnet_popularity(n_hosts, rng, num_subnets=12, roughness=0.3)
    return src, dst


def traffic_pairs(
    hour: int,
    rng: np.random.Generator,
    udp: bool = False,
    scale: float = 1.0,
    base_packets: int = 300_000,
    structure_seed: int = 0,
) -> RealLikeRelation:
    """One trace hour projected on (source host, destination host).

    The traffic matrix mixes rank-1 background traffic (host popularity,
    which is a property of the *network* and is therefore drawn from
    ``structure_seed`` and shared by every hour generated with the same
    seed) with a set of Zipf-weighted hot host pairs — flows.  Flows are
    short-lived, so the flow set is *transient*: drawn from the per-hour
    ``rng``, each hour has its own.  This is what makes the cross-hour join
    background-driven while each hour's self-join (second moment) is
    inflated by its own spikes — the regime the paper's Figures 17-20
    exhibit.
    """
    weights = TRAFFIC_UDP_WEIGHTS if udp else TRAFFIC_HOUR_WEIGHTS
    if hour not in weights:
        raise ValueError(f"hour must be one of {sorted(weights)}")
    n_hosts = max(64, int((7_328 if udp else 2_395) * scale))
    structure_rng = np.random.default_rng(structure_seed + (1_000_003 if udp else 0))
    src_pmf, dst_pmf = _traffic_host_pmfs(n_hosts, structure_rng)
    background = np.outer(src_pmf, dst_pmf)

    num_flows = max(16, n_hosts // 4)
    # Flows connect *popular* hosts (servers stay busy hour after hour even
    # though individual flows come and go), so endpoints are drawn from the
    # shared popularity — keeping host marginals correlated across hours
    # while the pair-level spikes remain transient.
    flow_src = rng.choice(n_hosts, size=num_flows, p=src_pmf)
    flow_dst = rng.choice(n_hosts, size=num_flows, p=dst_pmf)
    flow_weights = zipf_probabilities(num_flows, 1.2)
    hot = np.zeros((n_hosts, n_hosts))
    np.add.at(hot, (flow_src, flow_dst), flow_weights)

    joint = 0.6 * background + 0.4 * hot / hot.sum()
    joint /= joint.sum()
    total = max(1, int(base_packets * weights[hour] * scale))
    counts = _jittered_sample(joint, total, rng, jitter=0.08)
    proto = "udp" if udp else "tcp"
    return RealLikeRelation(
        name=f"{proto}_hour{hour}_pairs",
        attributes=("src", "dst"),
        domains=(Domain.integer_range(0, n_hosts - 1), Domain.integer_range(0, n_hosts - 1)),
        counts=counts,
    )


def traffic_hosts(
    hour: int,
    rng: np.random.Generator,
    field: str = "src",
    udp: bool = False,
    scale: float = 1.0,
    base_packets: int = 300_000,
    structure_seed: int = 0,
) -> RealLikeRelation:
    """One trace hour projected on a single host attribute (src or dst)."""
    if field not in ("src", "dst"):
        raise ValueError("field must be 'src' or 'dst'")
    pairs = traffic_pairs(
        hour, rng, udp=udp, scale=scale, base_packets=base_packets,
        structure_seed=structure_seed,
    )
    axis = 1 if field == "src" else 0
    counts = pairs.counts.sum(axis=axis)
    dom = pairs.domains[0 if field == "src" else 1]
    return RealLikeRelation(
        name=pairs.name.replace("pairs", field),
        attributes=(field,),
        domains=(dom,),
        counts=counts,
    )
