"""Type II synthetic data: clustered, correlated relations (Vitter-Dobra).

Section 5.2.1 argues real-life data is "correlated and sparsely clustered"
and adopts the generator of Vitter & Wang [27], extended by Dobra et
al. [9] to correlated join attributes across relations.  Tuples are
distributed "across and within randomly picked rectangular regions
(clusters) in the multi-dimensional attribute space":

* region weights follow Zipf(``z_inter``) (the paper uses 1.0);
* within a region, cell weights follow Zipf(``z_intra``) (0.0-0.5);
* each region's cell volume is drawn from ``volume_range`` (1,000-2,000);
* relations sharing a join attribute place their regions around common
  anchor coordinates, each relation *perturbing* its copy by a fraction
  drawn from ``perturbation`` (0.5-1.0) of the region side — the source of
  the "not extremely strong" positive correlation the paper credits for the
  cosine method's advantage on these datasets.

:func:`make_clustered_chain` produces the paper's chain-query relation
lists: 1-attribute end relations and 2-attribute inner relations, e.g.
``[R1(A), R2(A,B), R3(B)]`` for the two-join experiments.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from .zipf import apportion, zipf_probabilities


@dataclass(frozen=True)
class ClusteredConfig:
    """Parameters of a Type II dataset (defaults follow section 5.2.1)."""

    domain_size: int = 1024
    num_clusters: int = 10
    relation_size: int = 100_000
    z_inter: float = 1.0
    z_intra: float = 0.5
    volume_range: tuple[int, int] = (1_000, 2_000)
    perturbation: tuple[float, float] = (0.5, 1.0)
    #: Dimensionality the volume_range refers to.  Region side lengths are
    #: ``volume ** (1/reference_ndim)`` regardless of a relation's actual
    #: arity, so 1-d end relations of a chain get the same per-dimension
    #: extent (and hence the same marginal cluster structure) as the 2-d
    #: inner relations they join with.
    reference_ndim: int = 2


def _region_geometry(
    config: ClusteredConfig, ndim: int, rng: np.random.Generator
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Anchor centers and side lengths of the shared cluster rectangles.

    Returns ``(centers, sides)`` with shape ``(num_clusters, ndim)``.  Side
    lengths split each region's target cell volume roughly evenly across
    dimensions (randomly jittered), clamped into the domain.
    """
    n = config.domain_size
    centers = rng.uniform(0, n, size=(config.num_clusters, ndim))
    volumes = rng.integers(
        config.volume_range[0], config.volume_range[1] + 1, size=config.num_clusters
    ).astype(float)
    base_side = volumes ** (1.0 / config.reference_ndim)
    jitter = rng.uniform(0.6, 1.4, size=(config.num_clusters, ndim))
    sides = base_side[:, None] * jitter
    return centers, np.clip(sides, 1.0, n)


def _perturbed_centers(
    centers: NDArray[Any],
    sides: NDArray[Any],
    config: ClusteredConfig,
    rng: np.random.Generator,
) -> NDArray[Any]:
    """One relation's private copy of the shared anchors (Dobra's p)."""
    p = rng.uniform(*config.perturbation, size=centers.shape)
    offsets = rng.uniform(-0.5, 0.5, size=centers.shape) * p * sides
    return centers + offsets


def _region_cell_slices(
    center: NDArray[Any], side: NDArray[Any], n: int
) -> list[NDArray[Any]]:
    """Per-dimension index arrays of a region's rectangle, clamped to [0, n)."""
    slices = []
    for c, s in zip(center, side):
        lo = int(np.floor(c - s / 2.0))
        hi = int(np.ceil(c + s / 2.0))
        lo, hi = max(lo, 0), min(hi, n)
        if hi <= lo:  # degenerate after clamping: keep one cell
            lo = min(max(int(c), 0), n - 1)
            hi = lo + 1
        slices.append(np.arange(lo, hi))
    return slices


def clustered_counts(
    config: ClusteredConfig,
    ndim: int,
    centers: NDArray[Any],
    rng: np.random.Generator,
    sides: NDArray[Any],
) -> NDArray[Any]:
    """Materialize one relation's joint count tensor from its regions."""
    n = config.domain_size
    counts = np.zeros((n,) * ndim, dtype=np.int64)
    region_totals = apportion(
        zipf_probabilities(config.num_clusters, config.z_inter), config.relation_size
    )
    # Zipf weights are assigned to regions in random order so no corner of
    # the space is systematically hotter.
    order = rng.permutation(config.num_clusters)
    for region, total in zip(order, region_totals):
        if total == 0:
            continue
        slices = _region_cell_slices(centers[region], sides[region], n)
        shape = tuple(len(s) for s in slices)
        num_cells = int(np.prod(shape))
        cell_probs = zipf_probabilities(num_cells, config.z_intra)
        cell_probs = cell_probs[rng.permutation(num_cells)]
        cell_counts = rng.multinomial(int(total), cell_probs).reshape(shape)
        region_index = np.ix_(*slices)
        counts[region_index] += cell_counts
    return counts


def make_clustered_chain(
    config: ClusteredConfig,
    num_joins: int,
    rng: np.random.Generator,
) -> list[NDArray[Any]]:
    """Generate the relations of a ``num_joins``-join chain query.

    Returns ``num_joins + 1`` count tensors: 1-d ends and 2-d inner
    relations, with adjacent relations' clusters anchored at shared
    coordinates on their common join attribute (positively correlated, the
    paper's Figures 7-12 setting).
    """
    if num_joins < 1:
        raise ValueError("a chain needs at least one join")
    num_relations = num_joins + 1
    # One anchor coordinate set per join attribute; a relation's region
    # centers are the anchors of its attributes, privately perturbed.
    attr_geometry = [_region_geometry(config, 1, rng) for _ in range(num_joins)]

    relations: list[NDArray[Any]] = []
    for rel in range(num_relations):
        if rel == 0:
            attrs = [0]
        elif rel == num_relations - 1:
            attrs = [num_joins - 1]
        else:
            attrs = [rel - 1, rel]
        centers = np.concatenate(
            [attr_geometry[a][0] for a in attrs], axis=1
        )  # (clusters, len(attrs))
        sides = np.concatenate([attr_geometry[a][1] for a in attrs], axis=1)
        perturbed = _perturbed_centers(centers, sides, config, rng)
        relations.append(clustered_counts(config, len(attrs), perturbed, rng, sides))
    return relations
