"""Workload generators for the section 5 experiments.

- :mod:`repro.data.zipf` — Type I synthetic data (Figures 1-6): Zipfian
  frequencies with controlled correlation, smoothness, and skew.
- :mod:`repro.data.clustered` — Type II synthetic data (Figures 7-12): the
  Vitter-Dobra clustered, correlated generator.
- :mod:`repro.data.reallike` — real-life-like substitutes (Figures 13-20)
  for the CPS, SIPP, and DEC-PKT datasets.
- :mod:`repro.data.streams` — expanding count tensors into tuple streams.
"""

from .clustered import ClusteredConfig, clustered_counts, make_clustered_chain
from .loaders import counts_from_csv, iter_csv_rows, relation_from_csv
from .reallike import (
    CPS_MONTH_SIZES,
    SIPP_YEAR_SIZES,
    RealLikeRelation,
    cps_like,
    sipp_ssuseq,
    sipp_weight_earnings,
    traffic_hosts,
    traffic_pairs,
)
from .streams import raw_rows_from_counts, rows_from_counts
from .zipf import (
    Correlation,
    TypeIConfig,
    apportion,
    make_type1_pair,
    zipf_counts,
    zipf_probabilities,
)

__all__ = [
    "ClusteredConfig",
    "counts_from_csv",
    "iter_csv_rows",
    "relation_from_csv",
    "clustered_counts",
    "make_clustered_chain",
    "CPS_MONTH_SIZES",
    "SIPP_YEAR_SIZES",
    "RealLikeRelation",
    "cps_like",
    "sipp_ssuseq",
    "sipp_weight_earnings",
    "traffic_hosts",
    "traffic_pairs",
    "raw_rows_from_counts",
    "rows_from_counts",
    "Correlation",
    "TypeIConfig",
    "apportion",
    "make_type1_pair",
    "zipf_counts",
    "zipf_probabilities",
]
