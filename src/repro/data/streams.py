"""Turning frequency tensors into simulated tuple streams.

The experiments read "tuples one after another to simulate the arrival of
items in the data stream" (section 5.1); these helpers expand a joint count
tensor into a shuffled array of index tuples (and optionally raw-value
tuples for relations whose domains do not start at zero).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain


def rows_from_counts(
    counts: NDArray[Any], rng: np.random.Generator, shuffle: bool = True
) -> NDArray[Any]:
    """Expand a joint count tensor into an ``(N, ndim)`` array of index rows.

    Each cell ``(j1..jd)`` with count ``c`` contributes ``c`` identical
    rows; the rows arrive in random order when ``shuffle`` is set (the
    paper's "no control over the order in which they arrive").
    """
    counts = np.asarray(counts)
    if counts.min() < 0:
        raise ValueError("counts must be non-negative")
    flat = counts.ravel()
    cells = np.repeat(np.arange(flat.shape[0]), flat.astype(np.int64))
    rows = np.stack(np.unravel_index(cells, counts.shape), axis=1)
    if shuffle:
        rng.shuffle(rows, axis=0)
    return rows


def raw_rows_from_counts(
    counts: NDArray[Any],
    domains: tuple[Domain, ...] | list[Domain],
    rng: np.random.Generator,
    shuffle: bool = True,
) -> NDArray[Any]:
    """Like :func:`rows_from_counts` but in raw attribute values.

    Only integer-range domains are supported (indices shift by each
    domain's lower bound).
    """
    rows = rows_from_counts(counts, rng, shuffle=shuffle)
    offsets = []
    for d in domains:
        if d.low is None:
            raise ValueError("raw rows require integer-range domains")
        offsets.append(d.low)
    return rows + np.asarray(offsets, dtype=rows.dtype)[None, :]
