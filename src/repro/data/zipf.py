"""Type I synthetic data: Zipfian frequencies with controlled correlation.

Section 5.2.1 builds its first family of datasets from Zipf-distributed
frequencies

    f_z(i) = (1 / i^z) / sum_j (1 / j^z),     1 <= i <= n

assigned to attribute values through *mappings* that control the three
experimental knobs:

* **correlation** between the two join attributes — the same mapping for
  both relations (strong positive), the same mapping with a fraction of
  R2's frequencies permuted (weak positive; the paper permutes 10%),
  independent random mappings, or an inverted mapping (negative);
* **smoothness** — an orderly (rank-to-position) mapping produces a smooth
  monotone frequency curve, a random mapping a rough one;
* **skew** — the Zipf parameters ``z1``, ``z2`` themselves.
"""

from __future__ import annotations

from typing import Any

import enum
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray


class Correlation(enum.Enum):
    """Join-attribute correlation regimes of Figures 1-6."""

    STRONG_POSITIVE = "strong_positive"
    WEAK_POSITIVE = "weak_positive"
    INDEPENDENT = "independent"
    NEGATIVE = "negative"


def zipf_probabilities(n: int, z: float) -> NDArray[Any]:
    """The Zipf(z) probability vector over ranks ``1..n`` (paper's f_z)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if z < 0:
        raise ValueError(f"zipf parameter must be >= 0, got {z}")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** z
    return weights / weights.sum()


def apportion(probabilities: NDArray[Any], total: int) -> NDArray[Any]:
    """Integer counts summing exactly to ``total`` (largest-remainder).

    Keeps synthetic relations at their nominal size so ground-truth join
    sizes are well-defined integers.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if total < 0:
        raise ValueError("total must be >= 0")
    raw = probabilities * total
    counts = np.floor(raw).astype(np.int64)
    shortfall = total - int(counts.sum())
    if shortfall > 0:
        order = np.argsort(raw - counts)[::-1]
        counts[order[:shortfall]] += 1
    return counts


def zipf_counts(n: int, z: float, total: int) -> NDArray[Any]:
    """Zipfian rank counts: ``apportion(zipf_probabilities(n, z), total)``."""
    return apportion(zipf_probabilities(n, z), total)


@dataclass(frozen=True)
class TypeIConfig:
    """Parameters of one Figure 1-6 dataset pair."""

    domain_size: int
    relation_size: int
    z1: float = 0.5
    z2: float = 1.0
    correlation: Correlation = Correlation.INDEPENDENT
    smooth: bool = False
    permute_fraction: float = 0.1  # the paper permutes 10% for "weak positive"


def make_type1_pair(
    config: TypeIConfig, rng: np.random.Generator
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Generate the two frequency vectors of a Type I single-join dataset.

    Returns ``(counts1, counts2)``, each of length ``config.domain_size``
    summing to ``config.relation_size``, with the requested correlation and
    smoothness instilled through the rank-to-value mappings.
    """
    n = config.domain_size
    ranks1 = zipf_counts(n, config.z1, config.relation_size)
    ranks2 = zipf_counts(n, config.z2, config.relation_size)

    # The base mapping sends rank i to a domain position: orderly (identity)
    # for smooth curves, a random permutation for rough ones.
    if config.smooth:
        mapping1 = np.arange(n)
    else:
        mapping1 = rng.permutation(n)

    if config.correlation is Correlation.STRONG_POSITIVE:
        mapping2 = mapping1
    elif config.correlation is Correlation.WEAK_POSITIVE:
        mapping2 = _permute_fraction(mapping1, config.permute_fraction, rng)
    elif config.correlation is Correlation.INDEPENDENT:
        mapping2 = np.arange(n) if config.smooth else rng.permutation(n)
        if config.smooth:
            raise ValueError(
                "smooth + independent is contradictory: orderly mappings on "
                "both sides are identical, i.e. strongly positively correlated"
            )
    elif config.correlation is Correlation.NEGATIVE:
        # Rank i of R2 lands where rank n-1-i of R1 landed: high frequencies
        # of one relation meet low frequencies of the other.
        mapping2 = mapping1[::-1]
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown correlation {config.correlation}")

    counts1 = np.zeros(n, dtype=np.int64)
    counts2 = np.zeros(n, dtype=np.int64)
    counts1[mapping1] = ranks1
    counts2[mapping2] = ranks2
    return counts1, counts2


def _permute_fraction(
    mapping: NDArray[Any], fraction: float, rng: np.random.Generator
) -> NDArray[Any]:
    """Displace the destinations of the top ``fraction`` of ranks.

    This is the paper's Figure 2 construction ("permuting only 10% of the
    frequencies of R2").  The paper notes that "the way to permute the
    frequencies also may affect the estimation performance"; of the
    plausible readings, displacing the *highest* frequencies to uniformly
    random positions (swapping with the previous occupants, so the result
    stays a permutation) is the one that reproduces the paper's Figure 2
    regime — the join size collapses toward the independent level while the
    body of the distributions stays aligned, which is exactly what blows up
    the sketches' relative error and leaves the cosine method accurate.
    Shuffling a uniformly chosen 10% of positions instead usually leaves
    the dominant head frequencies aligned and barely changes Figure 1.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    out = mapping.copy()
    n = len(mapping)
    k = min(int(round(n * fraction)), n // 2)
    if k < 1:
        return out
    top = np.arange(k)
    others = rng.choice(np.arange(k, n), size=k, replace=False)
    out[top], out[others] = out[others].copy(), out[top].copy()
    return out
