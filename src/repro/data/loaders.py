"""Loading stream relations from delimited files.

The reproduction substitutes generators for the paper's real datasets
(CPS, SIPP, DEC-PKT — see DESIGN.md); a user who *has* such microdata can
load it with these helpers instead and run the same experiments.  Files
are plain CSV with a header row; selected columns become the relation's
attributes, and values outside the declared domains can be clipped,
skipped, or rejected.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Literal, Sequence, TextIO

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain

if TYPE_CHECKING:
    from ..streams.relation import StreamRelation

OutOfDomain = Literal["error", "skip", "clip"]


def iter_csv_rows(
    source: Path | str | TextIO,
    columns: Sequence[str],
) -> Iterator[tuple[Any, ...]]:
    """Yield value tuples for the selected columns of a CSV file.

    Values are parsed as integers where possible, else kept as strings
    (matching the stream-log convention of :mod:`repro.streams.io`).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            yield from iter_csv_rows(handle, columns)
        return
    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        raise ValueError("CSV file has no header row")
    missing = [c for c in columns if c not in reader.fieldnames]
    if missing:
        raise ValueError(f"columns not in CSV header: {missing}")
    for record in reader:
        values = []
        for column in columns:
            token = (record[column] or "").strip()
            try:
                values.append(int(token))
            except ValueError:
                values.append(token)
        yield tuple(values)


def counts_from_csv(
    source: Path | str | TextIO,
    columns: Sequence[str],
    domains: Sequence[Domain],
    out_of_domain: OutOfDomain = "error",
) -> NDArray[Any]:
    """Build a joint count tensor from CSV columns.

    ``out_of_domain`` controls rows with values outside the declared
    domains: ``"error"`` (default) raises, ``"skip"`` drops the row,
    ``"clip"`` clamps integer values to the domain's bounds.
    """
    if len(columns) != len(domains):
        raise ValueError("one domain per selected column is required")
    if out_of_domain not in ("error", "skip", "clip"):
        raise ValueError(f"unknown out_of_domain policy: {out_of_domain!r}")
    counts = np.zeros(tuple(d.size for d in domains), dtype=np.int64)
    for row in iter_csv_rows(source, columns):
        indices = []
        drop = False
        for value, domain in zip(row, domains):
            if out_of_domain == "clip" and not domain.is_categorical:
                assert domain.low is not None and domain.high is not None
                if isinstance(value, int):
                    value = min(max(value, domain.low), domain.high)
            try:
                indices.append(domain.index_of(value))
            except ValueError:
                if out_of_domain == "skip":
                    drop = True
                    break
                raise
        if not drop:
            counts[tuple(indices)] += 1
    return counts


def relation_from_csv(
    name: str,
    source: Path | str | TextIO,
    columns: Sequence[str],
    domains: Sequence[Domain],
    out_of_domain: OutOfDomain = "error",
) -> StreamRelation:
    """Build a :class:`~repro.streams.relation.StreamRelation` from a CSV.

    The relation's exact state is bulk-loaded, so queries registered on it
    afterwards replay the file's contents (the engine's usual late-
    registration semantics).
    """
    from ..streams.relation import StreamRelation

    relation = StreamRelation(name, list(columns), list(domains))
    relation.load_counts(
        counts_from_csv(source, columns, domains, out_of_domain=out_of_domain)
    )
    return relation
