"""Core cosine-series synopsis machinery — the paper's primary contribution.

Public surface:

- :class:`~repro.core.normalization.Domain` and
  :func:`~repro.core.normalization.unify_domains` — attribute domains and the
  section 4.1 join-domain unification.
- :class:`~repro.core.synopsis.CosineSynopsis` — the incremental DCT stream
  synopsis (Eqs. 3.3–3.5).
- :func:`~repro.core.join.estimate_join_size`,
  :func:`~repro.core.join.estimate_multijoin_size`,
  :func:`~repro.core.join.estimate_chain_join_size`,
  :func:`~repro.core.join.estimate_self_join_size` — section 4.2 estimators.
- :mod:`~repro.core.error` — the section 4.3 analytic bounds.
- :mod:`~repro.core.range_query` — point/range estimation (section 6 remark).
"""

from .basis import (
    GridKind,
    basis_matrix,
    coefficients_from_counts,
    coefficients_via_scipy_dct,
    endpoint_grid,
    make_grid,
    midpoint_grid,
    phi,
    reconstruct_frequencies,
)
from .error import (
    absolute_error_bound,
    coefficients_for_relative_error,
    relative_error_bound,
    sketch_space_bounds,
    worst_case_coefficients,
)
from .join import (
    JoinPredicate,
    choose_budget,
    estimate_chain_join_size,
    estimate_join_size,
    estimate_join_size_by_group,
    estimate_join_size_with_bound,
    estimate_multijoin_size,
    estimate_self_join_size,
)
from .normalization import Domain, embed_counts, unify_domains
from .range_query import (
    estimate_box_count,
    estimate_cdf,
    estimate_point_count,
    estimate_quantile,
    estimate_range_count,
    estimate_range_selectivity,
)
from .decay import DecayedCosineSynopsis, estimate_decayed_join_size
from .window import SlidingWindowSynopsis
from .synopsis import CosineSynopsis, synopses_for_budget
from .theta_join import (
    estimate_band_join_size,
    estimate_inequality_join_size,
    estimate_selected_join_size,
    estimate_theta_join_size,
)
from .triangular import (
    full_indices,
    order_for_budget,
    triangular_count,
    triangular_indices,
)

__all__ = [
    "GridKind",
    "basis_matrix",
    "coefficients_from_counts",
    "coefficients_via_scipy_dct",
    "endpoint_grid",
    "make_grid",
    "midpoint_grid",
    "phi",
    "reconstruct_frequencies",
    "absolute_error_bound",
    "coefficients_for_relative_error",
    "relative_error_bound",
    "sketch_space_bounds",
    "worst_case_coefficients",
    "JoinPredicate",
    "estimate_chain_join_size",
    "estimate_join_size",
    "estimate_join_size_by_group",
    "estimate_join_size_with_bound",
    "choose_budget",
    "SlidingWindowSynopsis",
    "estimate_multijoin_size",
    "estimate_self_join_size",
    "Domain",
    "embed_counts",
    "unify_domains",
    "estimate_box_count",
    "estimate_cdf",
    "estimate_point_count",
    "estimate_quantile",
    "estimate_range_count",
    "estimate_range_selectivity",
    "CosineSynopsis",
    "synopses_for_budget",
    "estimate_band_join_size",
    "estimate_inequality_join_size",
    "estimate_selected_join_size",
    "estimate_theta_join_size",
    "DecayedCosineSynopsis",
    "estimate_decayed_join_size",
    "full_indices",
    "order_for_budget",
    "triangular_count",
    "triangular_indices",
]
