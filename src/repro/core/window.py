"""Count-based sliding-window cosine synopses.

Sliding windows are the standard way continuous queries bound unbounded
streams; the paper's Eq. 3.5 deletion support is exactly what makes them
cheap for cosine synopses: expire the oldest tuple by deleting it.  This
module packages that pattern — a synopsis plus the ring buffer of live
tuples — behind the same estimation surface as a plain synopsis.

Memory honesty: the ring buffer stores the raw tuples of the live window
(that is unavoidable for exact expiry under count-based semantics), so the
window's space is O(window) tuples + O(budget) coefficients.  For
approximate recency without the buffer, use
:class:`repro.core.decay.DecayedCosineSynopsis` instead.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from .basis import GridKind
from .normalization import Domain
from .synopsis import CosineSynopsis


class SlidingWindowSynopsis:
    """A cosine synopsis over the last ``window_size`` arrivals."""

    def __init__(
        self,
        domains: Sequence[Domain] | Domain,
        window_size: int,
        order: int | None = None,
        budget: int | None = None,
        truncation: str = "triangular",
        grid: GridKind = "midpoint",
    ) -> None:
        if window_size < 1:
            raise ValueError(f"window size must be >= 1, got {window_size}")
        self.window_size = window_size
        self.synopsis = CosineSynopsis(
            domains, order=order, budget=budget, truncation=truncation, grid=grid
        )
        self._window: deque[tuple[Any, ...]] = deque()

    @property
    def count(self) -> int:
        """Live tuples in the window (== window_size once warmed up)."""
        return len(self._window)

    @property
    def num_coefficients(self) -> int:
        return self.synopsis.num_coefficients

    def insert(self, values: Sequence[Any]) -> tuple[Any, ...] | None:
        """Add an arrival; returns the expired tuple once the window is full."""
        values = tuple(values) if not isinstance(values, tuple) else values
        self.synopsis.insert(values)
        self._window.append(values)
        if len(self._window) > self.window_size:
            expired = self._window.popleft()
            self.synopsis.delete(expired)
            return expired
        return None

    def contents(self) -> list[tuple[Any, ...]]:
        """The live window, oldest first (for inspection/testing)."""
        return list(self._window)

    def __len__(self) -> int:
        return len(self._window)
