"""Point and range COUNT estimation from a cosine synopsis.

The paper's conclusion notes the method "can also be applied to non-equal-
joins, range, and point queries"; this module implements that extension for
one-dimensional synopses.  The estimated count of values in the index range
``[lo, hi]`` is

    Est = (N / n) * sum_k a_k * sum_{j=lo}^{hi} phi_k(x_j)

where the inner basis sums have a closed form on the midpoint grid via the
cosine sum identity

    sum_{j=lo}^{hi} cos(k pi (2j+1) / (2n))
        = [ sin(k pi (hi+1) / n) - sin(k pi lo / n) ] / (2 sin(k pi / (2n))).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..fastpath import phi_block
from .basis import SQRT2
from .synopsis import CosineSynopsis


def basis_range_sums(order: int, n: int, lo: int, hi: int) -> NDArray[Any]:
    """Closed-form ``sum_{j=lo}^{hi} phi_k(x_j)`` on the midpoint grid.

    Returns the length-``order`` vector for ``k = 0..order-1``.
    """
    if not 0 <= lo <= hi < n:
        raise ValueError(f"index range [{lo}, {hi}] not inside [0, {n - 1}]")
    k = np.arange(order, dtype=float)
    sums = np.empty(order, dtype=float)
    sums[0] = hi - lo + 1
    if order > 1:
        kk = k[1:]
        numer = np.sin(kk * np.pi * (hi + 1) / n) - np.sin(kk * np.pi * lo / n)
        denom = 2.0 * np.sin(kk * np.pi / (2.0 * n))
        sums[1:] = SQRT2 * numer / denom
    return sums


def estimate_range_count(synopsis: CosineSynopsis, lo_index: int, hi_index: int) -> float:
    """Estimate how many stream elements fall in domain indices [lo, hi].

    Indices refer to the synopsis' domain (use ``domain.index_of`` to map raw
    values).  Works on either grid; the midpoint grid uses the closed form,
    the endpoint grid sums the basis directly.
    """
    if synopsis.ndim != 1:
        raise ValueError("range estimation expects a single-attribute synopsis")
    domain = synopsis.domains[0]
    n = domain.size
    if not 0 <= lo_index <= hi_index < n:
        raise ValueError(f"index range [{lo_index}, {hi_index}] not inside [0, {n - 1}]")
    if synopsis.grid == "midpoint":
        sums = basis_range_sums(synopsis.order, n, lo_index, hi_index)
    else:
        positions = domain.grid(synopsis.grid)[lo_index : hi_index + 1]
        sums = phi_block(synopsis.order, positions).sum(axis=1)
    return synopsis.count / n * float(np.dot(synopsis.coefficients, sums))


def estimate_point_count(synopsis: CosineSynopsis, index: int) -> float:
    """Estimate the frequency of a single domain value (a point query)."""
    return estimate_range_count(synopsis, index, index)


def estimate_range_selectivity(synopsis: CosineSynopsis, lo_index: int, hi_index: int) -> float:
    """Estimated fraction of the stream falling in the index range."""
    if synopsis.count == 0:
        raise ValueError("synopsis is empty")
    return estimate_range_count(synopsis, lo_index, hi_index) / synopsis.count


def estimate_cdf(synopsis: CosineSynopsis) -> NDArray[Any]:
    """Estimated cumulative distribution over the domain indices.

    ``cdf[j]`` estimates the fraction of the stream with value index
    ``<= j``.  Computed from the reconstruction and clipped monotone, so
    downstream quantile lookups are well-behaved even under truncation
    noise; exact at full coefficient budget.
    """
    if synopsis.ndim != 1:
        raise ValueError("CDF estimation expects a single-attribute synopsis")
    if synopsis.count == 0:
        raise ValueError("synopsis is empty")
    frequencies = synopsis.reconstruct_counts() / synopsis.count
    cdf = np.cumsum(frequencies)
    cdf = np.maximum.accumulate(np.clip(cdf, 0.0, None))
    if cdf[-1] > 0:
        cdf = cdf / cdf[-1]
    return cdf


def estimate_quantile(synopsis: CosineSynopsis, q: float) -> int:
    """Estimated q-quantile of the stream, as a domain index.

    Returns the smallest index whose estimated CDF reaches ``q`` — the
    standard left-continuous inverse.  A classic synopsis query (equi-depth
    histogram construction, median tracking) answered from the same
    coefficients as everything else.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    cdf = estimate_cdf(synopsis)
    return int(np.searchsorted(cdf, q, side="left").clip(0, len(cdf) - 1))


def estimate_box_count(
    synopsis: CosineSynopsis, ranges: "list[tuple[int, int] | None]"
) -> float:
    """Estimate how many tuples fall inside a d-dimensional index box.

    ``ranges`` gives one inclusive ``(lo, hi)`` index range per attribute
    (``None`` = the whole axis).  The box count is a separable functional
    of the joint frequency, so it contracts the coefficient tensor with the
    per-dimension closed-form basis range sums:

        Est = (N / prod_j n_j) * sum_k a_k * prod_j S_{k_j}(lo_j, hi_j).

    This is the multidimensional form of :func:`estimate_range_count` (the
    selectivity estimation of Lee et al. [21], which the paper builds on).
    """
    if len(ranges) != synopsis.ndim:
        raise ValueError(
            f"need one range per attribute ({synopsis.ndim}), got {len(ranges)}"
        )
    factors = []
    scale = float(synopsis.count)
    for domain, bounds in zip(synopsis.domains, ranges):
        n = domain.size
        lo, hi = (0, n - 1) if bounds is None else bounds
        if not 0 <= lo <= hi < n:
            raise ValueError(f"index range [{lo}, {hi}] not inside [0, {n - 1}]")
        if synopsis.grid == "midpoint":
            sums = basis_range_sums(synopsis.order, n, lo, hi)
        else:
            positions = domain.grid(synopsis.grid)[lo : hi + 1]
            sums = phi_block(synopsis.order, positions).sum(axis=1)
        factors.append(sums)
        scale /= n
    per_coefficient = np.ones(synopsis.num_coefficients)
    for axis, sums in enumerate(factors):
        per_coefficient = per_coefficient * sums[synopsis.indices[:, axis]]
    return scale * float(np.dot(synopsis.coefficients, per_coefficient))
