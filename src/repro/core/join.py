"""Join size estimation from cosine synopses (section 4 of the paper).

Single equi-join (Eq. 4.4): for streams R1, R2 summarized over the same
unified join-attribute domain of size ``n``,

    Est = (N1 * N2 / n) * sum_{k=0}^{m-1} a_k * b_k.

Multi-join queries generalize this to a contraction of the relations'
coefficient tensors along the joined dimensions ("adding up the products of
the corresponding coefficients on the same dimensions", section 4.2).  For
the paper's three-join chain R1.A=R2.A, R2.B=R3.B, R3.C=R4.C:

    Est = (N1 N2 N3 N4 / (nA nB nC)) * sum_{k,l,m} a1_k a2_{k,l} a3_{l,m} a4_m

which this module evaluates with a generated ``einsum``.  The contraction is
valid for *any* join graph in which each attribute slot of each relation
participates in exactly one equi-join predicate (joined pairs must share a
unified domain); attributes not joined at all are marginalized away, which
in coefficient space is simply slicing their index at 0 (the order-0
coefficient of a dimension is its marginal).
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from ..fastpath import phi_block
from .synopsis import CosineSynopsis

#: An attribute slot: (relation position in the synopsis list, axis index).
Slot = tuple[int, int]


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate between two attribute slots."""

    left: Slot
    right: Slot

    def slots(self) -> tuple[Slot, Slot]:
        return (self.left, self.right)


def estimate_self_join_size(synopsis: CosineSynopsis) -> float:
    """Estimate ``|R join R|`` (the second frequency moment) of a stream.

    By Parseval, ``F2 = (N^2 / n) * sum_k a_k^2``; truncation to the stored
    coefficients gives the estimate.
    """
    if synopsis.ndim != 1:
        raise ValueError("self-join estimation expects a single-attribute synopsis")
    coeffs = synopsis.coefficients
    n = synopsis.domains[0].size
    return float(synopsis.count) ** 2 / n * float(np.dot(coeffs, coeffs))


def estimate_join_size(a: CosineSynopsis, b: CosineSynopsis) -> float:
    """Estimate the size of a single equi-join ``R1.A = R2.B`` (Eq. 4.4).

    Both synopses must be one-dimensional over the *same* unified domain and
    grid.  If their orders differ, the common prefix of coefficients is used
    (truncation only ever drops trailing terms).
    """
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(
            "estimate_join_size expects single-attribute synopses; "
            "use estimate_multijoin_size for multi-attribute relations"
        )
    _require_joinable(a, b, axis_a=0, axis_b=0)
    m = min(a.order, b.order)
    n = a.domains[0].size
    dot = float(np.dot(a.coefficients[:m], b.coefficients[:m]))
    return a.count * b.count / n * dot


def estimate_multijoin_size(
    synopses: Sequence[CosineSynopsis],
    predicates: Sequence[JoinPredicate | tuple[Slot, Slot]],
) -> float:
    """Estimate a multi-equi-join COUNT query by tensor contraction.

    Parameters
    ----------
    synopses:
        One cosine synopsis per relation in the FROM clause.
    predicates:
        Equi-join predicates as :class:`JoinPredicate` or plain
        ``((rel, axis), (rel, axis))`` pairs.  Each attribute slot may appear
        in at most one predicate; slots in no predicate are marginalized.
    """
    preds = [p if isinstance(p, JoinPredicate) else JoinPredicate(*p) for p in predicates]
    if not synopses:
        raise ValueError("at least one synopsis is required")
    if not preds:
        raise ValueError("at least one join predicate is required")

    seen: set[Slot] = set()
    for pred in preds:
        for rel, axis in pred.slots():
            if not 0 <= rel < len(synopses):
                raise ValueError(f"predicate references relation {rel} of {len(synopses)}")
            if not 0 <= axis < synopses[rel].ndim:
                raise ValueError(f"predicate references axis {axis} of relation {rel}")
            if (rel, axis) in seen:
                raise ValueError(f"attribute slot {(rel, axis)} used by two predicates")
            seen.add((rel, axis))
        a = synopses[pred.left[0]]
        b = synopses[pred.right[0]]
        _require_joinable(a, b, axis_a=pred.left[1], axis_b=pred.right[1])

    # Common contraction order: truncate every tensor to the smallest order
    # among the synopses (triangular truncation keeps exactly the low orders,
    # so this only drops terms neither side could pair up anyway).
    order = min(s.order for s in synopses)

    # Assign one einsum symbol per predicate.
    symbols = iter(string.ascii_lowercase)
    slot_symbol: dict[Slot, str] = {}
    scale = 1.0
    for pred in preds:
        sym = next(symbols)
        slot_symbol[pred.left] = sym
        slot_symbol[pred.right] = sym
        n = synopses[pred.left[0]].domains[pred.left[1]].size
        scale /= n

    operands: list[NDArray[Any]] = []
    subscripts: list[str] = []
    for rel, syn in enumerate(synopses):
        tensor = syn.dense_tensor(order)
        script = ""
        # Marginalize unjoined axes by slicing index 0 (order-0 coefficient
        # of a dimension is the marginal over it); collect symbols otherwise.
        slicer: list[object] = []
        for axis in range(syn.ndim):
            slot = (rel, axis)
            if slot in slot_symbol:
                slicer.append(slice(None))
                script += slot_symbol[slot]
            else:
                slicer.append(0)
        operands.append(tensor[tuple(slicer)])
        subscripts.append(script)
        scale *= syn.count

    expression = ",".join(subscripts) + "->"
    return scale * float(np.einsum(expression, *operands))


def choose_budget(
    a: CosineSynopsis, b: CosineSynopsis, tolerance: float = 0.01
) -> int:
    """Smallest coefficient budget whose estimate has converged.

    A practical budget advisor: given synopses maintained at a generous
    order ``M``, find the smallest ``m <= M`` whose estimate is within
    ``tolerance`` (relative) of the full-``M`` estimate — the self-
    consistent truncation point.  On smooth data this is tiny (the
    energy-compaction property); on adversarial data it approaches ``M``
    (the section 4.3.2 worst case); either way it costs one pass over the
    coefficient products, not a re-scan of the stream.

    Note this certifies convergence *to the order-M estimate*, not to the
    unknown true join size — pair it with
    :func:`estimate_join_size_with_bound` when a hard guarantee is needed.
    """
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("choose_budget expects single-attribute synopses")
    _require_joinable(a, b, axis_a=0, axis_b=0)
    if not 0 < tolerance:
        raise ValueError("tolerance must be positive")
    m = min(a.order, b.order)
    n = a.domains[0].size
    scale = a.count * b.count / n
    products = a.coefficients[:m] * b.coefficients[:m]
    partials = scale * np.cumsum(products)
    full = partials[-1]
    denominator = max(abs(full), 1e-12)
    within = np.abs(partials - full) / denominator <= tolerance
    # smallest prefix length from which the estimate STAYS within tolerance
    stays = np.logical_and.accumulate(within[::-1])[::-1]
    first = int(np.argmax(stays)) if stays.any() else m - 1
    return first + 1


def estimate_join_size_with_bound(
    a: CosineSynopsis, b: CosineSynopsis
) -> tuple[float, float]:
    """Single-join estimate plus its deterministic Eq. 4.7 error bound.

    Returns ``(estimate, bound)`` with ``|J - estimate| <= bound``
    guaranteed for *any* pair of distributions — the worst-case guarantee
    of section 4.3 attached to the point estimate.  The bound is usually
    very loose (that is the paper's point); it is exact about being an
    upper bound, which is what makes it useful as a certificate.
    """
    from .error import absolute_error_bound

    estimate = estimate_join_size(a, b)
    m = min(a.order, b.order)
    n = a.domains[0].size
    bound = absolute_error_bound(a.count, b.count, n, m)
    return estimate, bound


def estimate_join_size_by_group(
    grouped: CosineSynopsis,
    other: CosineSynopsis,
    group_axis: int = 0,
) -> NDArray[Any]:
    """Per-group equi-join sizes: ``GROUP BY`` one attribute of a 2-d stream.

    For a two-attribute synopsis of R1(G, A) joined with a one-attribute
    synopsis of R2(A), returns the length-``n_G`` vector of estimates of

        J(g) = |{(s, t) : s.G = g, s.A = t.A}| = N1 N2 * sum_a f1(g, a) f2(a)

    — the answer to ``SELECT G, COUNT(*) ... GROUP BY G``.  In coefficient
    space this reconstructs along the group axis only:

        J(g) = (N1 N2 / (n_G n_A)) * sum_{k,l} a1_{k,l} φ_k(x_g) b_l.

    Summing the vector gives the plain join estimate (tested).
    """
    if grouped.ndim != 2:
        raise ValueError("group-by estimation expects a two-attribute synopsis")
    if other.ndim != 1:
        raise ValueError("the probe side must be a single-attribute synopsis")
    if group_axis not in (0, 1):
        raise ValueError("group_axis must be 0 or 1")
    join_axis = 1 - group_axis
    _require_joinable(grouped, other, axis_a=join_axis, axis_b=0)

    # Only the JOIN axis is truncated to the probe's order; the group axis
    # keeps the grouped synopsis' full stored resolution.
    join_order = min(grouped.order, other.order)
    tensor = grouped.dense_tensor(grouped.order)
    if group_axis == 1:
        tensor = tensor.T
    tensor = tensor[:, :join_order]
    contracted = tensor @ other.coefficients[:join_order]  # over group orders
    group_domain = grouped.domains[group_axis]
    table = phi_block(grouped.order, group_domain.grid(grouped.grid))
    n_group = group_domain.size
    n_join = grouped.domains[join_axis].size
    scale = grouped.count * other.count / (n_group * n_join)
    return scale * (contracted @ table)


def estimate_chain_join_size(synopses: Sequence[CosineSynopsis]) -> float:
    """Estimate the paper's chain query ``R1.A1=R2.A1 and R2.A2=R3.A2 and ...``.

    Convenience wrapper for the experiment workloads: relation ``i`` joins
    its *last* attribute with relation ``i+1``'s *first* attribute, exactly
    the section 5.1 query shape (end relations have one attribute, inner
    relations two).
    """
    if len(synopses) < 2:
        raise ValueError("a chain join needs at least two relations")
    predicates = []
    for i in range(len(synopses) - 1):
        left_axis = synopses[i].ndim - 1
        predicates.append(JoinPredicate((i, left_axis), (i + 1, 0)))
    return estimate_multijoin_size(synopses, predicates)


def _require_joinable(
    a: CosineSynopsis, b: CosineSynopsis, axis_a: int, axis_b: int
) -> None:
    """Check that two synopsis axes describe the same unified domain."""
    if a.grid != b.grid:
        raise ValueError(f"synopses use different grids: {a.grid!r} vs {b.grid!r}")
    da, db = a.domains[axis_a], b.domains[axis_b]
    if da.size != db.size:
        raise ValueError(
            "join attributes must be normalized over the same unified domain "
            f"(sizes {da.size} vs {db.size}); see repro.core.normalization.unify_domains"
        )
