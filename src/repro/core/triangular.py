"""Triangular truncation of multidimensional coefficient index sets.

Section 3.2 adopts the "triangular sampling" technique of Lee et al. [21]:
of the ``m^d`` tensor-product coefficients of a d-dimensional transform,
retain only those whose index tuple satisfies

    k_1 + k_2 + ... + k_d <= m - 1.

Exactly ``C(m + d - 1, d)`` coefficients survive — about ``1/d!`` of the
full grid — and, because the retained set is fully determined by ``(m, d)``,
no index needs to be stored alongside the values.
"""

from __future__ import annotations

from typing import Any

from math import comb

import numpy as np
from numpy.typing import NDArray


def triangular_count(order: int, ndim: int) -> int:
    """Number of index tuples with ``k_1 + ... + k_d <= order - 1``.

    Equals ``C(order + ndim - 1, ndim)`` (paper section 3.2).
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    return comb(order + ndim - 1, ndim)


def full_count(order: int, ndim: int) -> int:
    """Number of index tuples on the full ``order^ndim`` grid."""
    if order < 1 or ndim < 1:
        raise ValueError("order and ndim must be >= 1")
    return order**ndim


def triangular_indices(order: int, ndim: int) -> NDArray[Any]:
    """Enumerate the triangular index set in lexicographic order.

    Returns an ``(count, ndim)`` int64 array.  The enumeration order is
    deterministic for a given ``(order, ndim)``, which is what lets the
    synopsis store bare coefficient values without their indexes.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    if ndim == 1:
        return np.arange(order, dtype=np.int64)[:, None]
    rows: list[NDArray[Any]] = []
    for first in range(order):
        tail = triangular_indices(order - first, ndim - 1)
        block = np.empty((tail.shape[0], ndim), dtype=np.int64)
        block[:, 0] = first
        block[:, 1:] = tail
        rows.append(block)
    return np.concatenate(rows, axis=0)


def full_indices(order: int, ndim: int) -> NDArray[Any]:
    """Enumerate the full ``order^ndim`` grid in lexicographic order."""
    if order < 1 or ndim < 1:
        raise ValueError("order and ndim must be >= 1")
    grids = np.meshgrid(*([np.arange(order, dtype=np.int64)] * ndim), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def order_for_budget(budget: int, ndim: int, truncation: str = "triangular") -> int:
    """Largest order ``m`` whose retained-coefficient count fits ``budget``.

    This is how a paper-style space budget ("number of coefficients") is
    converted into a transform order.  Raises if even ``m = 1`` does not fit.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    counter = triangular_count if truncation == "triangular" else full_count
    if truncation not in ("triangular", "full"):
        raise ValueError(f"unknown truncation: {truncation!r}")
    if counter(1, ndim) > budget:
        raise ValueError(f"budget {budget} cannot hold even a single coefficient")
    order = 1
    while counter(order + 1, ndim) <= budget:
        order += 1
    return order


def scatter_to_dense(
    indices: NDArray[Any], values: NDArray[Any], order: int
) -> NDArray[Any]:
    """Scatter retained coefficients into a dense ``(order,)*ndim`` tensor.

    Entries outside the retained set are zero — exactly the truncation the
    estimator applies.  Used by the multi-join tensor contraction.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=float)
    if indices.ndim != 2 or indices.shape[0] != values.shape[0]:
        raise ValueError("indices must be (count, ndim) matching values length")
    ndim = indices.shape[1]
    if indices.size and indices.max() >= order:
        raise ValueError("an index exceeds the requested dense order")
    dense = np.zeros((order,) * ndim, dtype=float)
    dense[tuple(indices[:, j] for j in range(ndim))] = values
    return dense
