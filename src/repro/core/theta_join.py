"""Non-equi (theta) join size estimation from cosine synopses.

The paper's conclusion claims the method "can also be applied to non-equal-
joins" (section 6); this module implements that extension.  A theta join's
size is a bilinear form of the two frequency vectors:

    J_theta = N1 * N2 * sum_{x, y : theta(x, y)} f1(x) * f2(y)

The synopsis gives (truncated) reconstructions of ``f1`` and ``f2`` on the
discrete grid, so any theta predicate can be evaluated against them.  For
the common predicates the double sum collapses to a single pass:

* inequality joins (``A < B`` etc.): pair ``f1`` with the suffix/prefix
  cumulative sums of ``f2``;
* band joins (``|A - B| <= w``): pair ``f1`` with a sliding-window sum of
  ``f2``.

With the full coefficient set the reconstructions — and therefore these
estimates — are exact (property-tested), mirroring Eq. 4.3 for equi-joins.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np
from numpy.typing import NDArray

from .synopsis import CosineSynopsis


def _reconstructed_counts(synopsis: CosineSynopsis) -> NDArray[Any]:
    if synopsis.ndim != 1:
        raise ValueError("theta-join estimation expects single-attribute synopses")
    return synopsis.reconstruct_counts()


def _require_joinable(a: CosineSynopsis, b: CosineSynopsis) -> None:
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("theta-join estimation expects single-attribute synopses")
    if a.domains[0].size != b.domains[0].size:
        raise ValueError(
            "join attributes must be normalized over the same unified domain"
        )
    if a.grid != b.grid:
        raise ValueError(f"synopses use different grids: {a.grid!r} vs {b.grid!r}")


def estimate_inequality_join_size(
    a: CosineSynopsis, b: CosineSynopsis, op: str = "<"
) -> float:
    """Estimate ``|{(s, t) : s.A  op  t.B}|`` for an inequality predicate.

    ``op`` is one of ``"<"``, ``"<="``, ``">"``, ``">="``; the comparison is
    between *domain indices* of the unified join domain (i.e. value order).
    """
    _require_joinable(a, b)
    fa = _reconstructed_counts(a)
    fb = _reconstructed_counts(b)
    # suffix[x] = sum_{y > x} fb(y); shift by one for the inclusive ops.
    totals = fb.sum()
    prefix_inclusive = np.cumsum(fb)
    if op == "<":
        partner = totals - prefix_inclusive  # strictly greater
    elif op == "<=":
        partner = totals - prefix_inclusive + fb  # greater or equal
    elif op == ">":
        partner = prefix_inclusive - fb  # strictly smaller
    elif op == ">=":
        partner = prefix_inclusive  # smaller or equal
    else:
        raise ValueError(f"unsupported inequality operator: {op!r}")
    return float(fa @ partner)


def estimate_band_join_size(
    a: CosineSynopsis, b: CosineSynopsis, width: int
) -> float:
    """Estimate the band join ``|{(s, t) : |s.A - t.B| <= width}|``.

    ``width`` is in domain-index units; ``width = 0`` degenerates to the
    equi-join (and then agrees with
    :func:`repro.core.join.estimate_join_size` up to truncation effects of
    the reconstruction).
    """
    if width < 0:
        raise ValueError(f"band width must be >= 0, got {width}")
    _require_joinable(a, b)
    fa = _reconstructed_counts(a)
    fb = _reconstructed_counts(b)
    n = fb.shape[0]
    # windowed[x] = sum_{|y - x| <= width} fb(y), via prefix sums.
    prefix = np.concatenate([[0.0], np.cumsum(fb)])
    hi = np.minimum(np.arange(n) + width + 1, n)
    lo = np.maximum(np.arange(n) - width, 0)
    windowed = prefix[hi] - prefix[lo]
    return float(fa @ windowed)


def estimate_selected_join_size(
    a: CosineSynopsis,
    b: CosineSynopsis,
    range_a: tuple[int, int] | None = None,
    range_b: tuple[int, int] | None = None,
) -> float:
    """Estimate an equi-join with range selections on either input.

    ``|sigma_{lo_a <= A <= hi_a}(R1)  join  sigma_{lo_b <= B <= hi_b}(R2)|``
    with ranges in domain indices (``None`` = no selection).  Because the
    join is an equi-join, only values in the *intersection* of the two
    ranges can match.  Exact at full coefficient budget, like the other
    reconstruction-based estimators here.
    """
    _require_joinable(a, b)
    n = a.domains[0].size

    def clip(bounds: tuple[int, int] | None) -> tuple[int, int]:
        if bounds is None:
            return 0, n - 1
        lo, hi = bounds
        if not 0 <= lo <= hi < n:
            raise ValueError(f"selection range [{lo}, {hi}] not inside [0, {n - 1}]")
        return lo, hi

    lo_a, hi_a = clip(range_a)
    lo_b, hi_b = clip(range_b)
    lo, hi = max(lo_a, lo_b), min(hi_a, hi_b)
    if lo > hi:
        return 0.0
    fa = _reconstructed_counts(a)[lo : hi + 1]
    fb = _reconstructed_counts(b)[lo : hi + 1]
    return float(fa @ fb)


def estimate_theta_join_size(
    a: CosineSynopsis,
    b: CosineSynopsis,
    predicate: Callable[[NDArray[Any], NDArray[Any]], NDArray[Any]],
    chunk: int = 512,
) -> float:
    """Estimate a join under an arbitrary predicate on domain indices.

    ``predicate(x, y)`` receives broadcastable integer index arrays and
    returns a boolean array — e.g. ``lambda x, y: (x + y) % 3 == 0``.  Cost
    is O(n^2 / chunk) vectorized passes; prefer the closed forms above for
    inequality and band predicates.
    """
    _require_joinable(a, b)
    fa = _reconstructed_counts(a)
    fb = _reconstructed_counts(b)
    n = fa.shape[0]
    indices = np.arange(n)
    total = 0.0
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        mask = predicate(indices[start:stop, None], indices[None, :])
        if mask.shape != (stop - start, n):
            raise ValueError("predicate must broadcast to an (x, y) boolean matrix")
        total += float(fa[start:stop] @ (mask @ fb))
    return total
