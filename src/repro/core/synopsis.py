"""The cosine-series stream synopsis (sections 3.2 and 4 of the paper).

A :class:`CosineSynopsis` summarizes the joint frequency distribution of a
(multi-attribute) data stream by the leading coefficients of its discrete
cosine transform:

    a_{k1..kd} = (1/N) * sum_i prod_j phi_{kj}(x_ij)        (paper Eq. 3.3)

Internally the synopsis stores the *unnormalized* sums
``S_k = sum_i prod_j phi_{kj}(x_ij)`` together with the live tuple count
``N``; the coefficients are ``S_k / N``.  Storing sums makes the paper's
incremental maintenance (Eq. 3.4 for insertion, Eq. 3.5 for deletion) a
plain ``+=``/``-=`` of the arriving tuple's basis products, and guarantees
bit-for-bit that incremental and batch construction agree — the property
section 3.2 emphasizes ("exactly the same as if we had derived in batch
fashion").

Truncation follows the paper: either the full ``m^d`` grid or the
triangular set ``k1 + ... + kd <= m - 1`` (the default, section 3.2).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np
from numpy.typing import NDArray

from ..fastpath import phi_block
from .basis import GridKind
from .normalization import Domain
from .triangular import (
    full_indices,
    order_for_budget,
    scatter_to_dense,
    triangular_indices,
)

#: Batch rows processed per chunk when updating coefficients.  Sized so the
#: (coefficients x rows) table stays cache-friendly for the recurrence
#: kernel (a 2048-order chunk is 32 MB; wider chunks measurably degrade
#: the fast path's speedup) while still amortizing per-chunk overhead.
_CHUNK_ROWS = 2048


class CosineSynopsis:
    """Truncated d-dimensional cosine transform of a stream's distribution.

    Parameters
    ----------
    domains:
        One :class:`~repro.core.normalization.Domain` per attribute.  Join
        attributes must be described by the *unified* domain of the pair
        (section 4.1) for estimates to be comparable across streams.
    order:
        Transform order ``m`` — per-dimension coefficient indices run
        ``0..m-1``.  Mutually exclusive with ``budget``.
    budget:
        Total coefficient budget; the largest order whose retained set fits
        is chosen (this is the paper's "storage space = number of
        coefficients" accounting).
    truncation:
        ``"triangular"`` (default, section 3.2) or ``"full"``.
    grid:
        ``"midpoint"`` (default; exact Parseval) or ``"endpoint"``
        (the literal section 3.1 normalization).  See
        :mod:`repro.core.basis`.
    """

    # Structural parameters: a restored synopsis is always constructed with
    # the same spec first, so only the accumulators travel in checkpoints.
    _checkpoint_exempt = ("domains", "grid", "indices", "ndim", "order", "truncation")

    def __init__(
        self,
        domains: Sequence[Domain] | Domain,
        order: int | None = None,
        budget: int | None = None,
        truncation: str = "triangular",
        grid: GridKind = "midpoint",
    ) -> None:
        if isinstance(domains, Domain):
            domains = [domains]
        self.domains: tuple[Domain, ...] = tuple(domains)
        if not self.domains:
            raise ValueError("at least one attribute domain is required")
        self.ndim = len(self.domains)
        if (order is None) == (budget is None):
            raise ValueError("specify exactly one of order= or budget=")
        if truncation not in ("triangular", "full"):
            raise ValueError(f"unknown truncation: {truncation!r}")
        if order is None:
            assert budget is not None
            order = order_for_budget(budget, self.ndim, truncation)
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        # On an n-point grid only orders 0..n-1 carry information (higher
        # orders alias); clamp the global order to the largest domain and
        # drop index tuples whose component exceeds its own dimension.
        order = min(order, max(d.size for d in self.domains))
        self.order = order
        self.truncation = truncation
        self.grid: GridKind = grid
        if truncation == "triangular":
            indices = triangular_indices(order, self.ndim)
        else:
            indices = full_indices(order, self.ndim)
        sizes = np.array([d.size for d in self.domains], dtype=np.int64)
        self.indices = indices[np.all(indices < sizes[None, :], axis=1)]
        self._sums = np.zeros(self.indices.shape[0], dtype=float)
        self._count = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        """Live tuple count ``N`` (insertions minus deletions)."""
        return self._count

    @property
    def num_coefficients(self) -> int:
        """Number of stored coefficients — the paper's space unit."""
        return self.indices.shape[0]

    @property
    def coefficients(self) -> NDArray[Any]:
        """Current coefficient values ``a_k = S_k / N`` (paper Eq. 3.3)."""
        if self._count == 0:
            raise ValueError("synopsis is empty; coefficients are undefined")
        return self._sums / self._count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CosineSynopsis(ndim={self.ndim}, order={self.order}, "
            f"coefficients={self.num_coefficients}, count={self._count}, "
            f"truncation={self.truncation!r}, grid={self.grid!r})"
        )

    # ------------------------------------------------------------------ #
    # maintenance (paper Eqs. 3.4 / 3.5)
    # ------------------------------------------------------------------ #

    def _contributions(self, rows: NDArray[Any]) -> NDArray[Any]:
        """Sum of per-tuple basis products for a batch of raw tuples.

        ``rows`` has shape ``(B, ndim)``; returns the length-``K`` vector
        ``sum_b prod_j phi_{k_j}(x_{b,j})`` accumulated over the batch.
        Duplicate rows are aggregated first (one basis evaluation per
        distinct tuple), which is where batch updates beat per-tuple ones
        on realistic skewed streams.
        """
        try:
            unique, multiplicity = np.unique(rows, axis=0, return_counts=True)
        except TypeError:  # non-sortable raw values (mixed categorical types)
            unique, multiplicity = rows, np.ones(rows.shape[0])
        total = np.zeros(self.indices.shape[0], dtype=float)
        for start in range(0, unique.shape[0], _CHUNK_ROWS):
            chunk = unique[start : start + _CHUNK_ROWS]
            weights = multiplicity[start : start + _CHUNK_ROWS].astype(float)
            if self.ndim == 1:
                # 1-d fast path: the retained orders are exactly 0..m-1, so
                # the contribution is a plain matrix-vector product.
                positions = self.domains[0].positions_of(chunk[:, 0], self.grid)
                table = phi_block(self.order, positions)
                total += table @ weights
                continue
            prod: NDArray[Any] | None = None
            for j, domain in enumerate(self.domains):
                positions = domain.positions_of(chunk[:, j], self.grid)
                table = phi_block(self.order, positions)
                factor = table[self.indices[:, j], :]
                prod = factor if prod is None else prod * factor
            assert prod is not None
            total += prod @ weights
        return total

    def insert(self, values: Sequence[Any] | NDArray[Any] | object) -> None:
        """Process the arrival of one tuple (paper Eq. 3.4)."""
        self.insert_batch(self._as_rows(values))

    def delete(self, values: Sequence[Any] | NDArray[Any] | object) -> None:
        """Process the deletion of one tuple (paper Eq. 3.5)."""
        self.delete_batch(self._as_rows(values))

    def insert_batch(self, rows: NDArray[Any] | Sequence[Any]) -> None:
        """Process a batch of arrivals at once (section 3.2, batch update).

        The result is identical to inserting each tuple individually; the
        batch form simply amortizes the basis evaluations.
        """
        rows = self._as_rows(rows)
        if rows.shape[0] == 0:
            return
        self._sums += self._contributions(rows)
        self._count += rows.shape[0]

    def delete_batch(self, rows: NDArray[Any] | Sequence[Any]) -> None:
        """Process a batch of deletions at once."""
        rows = self._as_rows(rows)
        if rows.shape[0] == 0:
            return
        if rows.shape[0] > self._count:
            raise ValueError("cannot delete more tuples than the stream holds")
        self._sums -= self._contributions(rows)
        self._count -= rows.shape[0]

    def _as_rows(self, values: Any) -> NDArray[Any]:
        """Coerce tuple / sequence-of-tuples input into a ``(B, ndim)`` array."""
        if self.ndim == 1 and np.isscalar(values):
            return np.asarray([[values]])
        arr = np.asarray(values)
        if arr.ndim == 1:
            if self.ndim == 1:
                # Ambiguity: a 1-d array over a 1-attribute synopsis is a batch
                # unless it has exactly one element per attribute by shape.
                arr = arr[:, None] if arr.shape[0] != 1 else arr[None, :]
            elif arr.shape[0] == self.ndim:
                arr = arr[None, :]
            else:
                raise ValueError(
                    f"tuple has {arr.shape[0]} attributes, synopsis expects {self.ndim}"
                )
        if arr.ndim != 2 or arr.shape[1] != self.ndim:
            raise ValueError(f"rows must have shape (B, {self.ndim}), got {arr.shape}")
        return arr

    # ------------------------------------------------------------------ #
    # batch construction (paper Eq. 3.3)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_counts(
        cls,
        domains: Sequence[Domain] | Domain,
        counts: NDArray[Any],
        order: int | None = None,
        budget: int | None = None,
        truncation: str = "triangular",
        grid: GridKind = "midpoint",
    ) -> "CosineSynopsis":
        """Build a synopsis directly from a joint frequency tensor.

        ``counts`` has one axis per attribute, ``counts[j1,..,jd]`` being the
        number of tuples at those domain indices.  Coefficients are computed
        in closed form (Eq. 3.3); the result is identical to streaming every
        tuple through :meth:`insert`.
        """
        syn = cls(domains, order=order, budget=budget, truncation=truncation, grid=grid)
        counts = np.asarray(counts, dtype=float)
        expected = tuple(d.size for d in syn.domains)
        if counts.shape != expected:
            raise ValueError(f"counts shape {counts.shape} does not match domains {expected}")
        total = counts.sum()
        if total < 0:
            raise ValueError("counts must be non-negative in aggregate")
        tensor = counts
        # Contract each value axis with the (order x n_j) basis matrix; after
        # d steps the tensor holds the unnormalized coefficient grid.
        for j, domain in enumerate(syn.domains):
            table = phi_block(syn.order, domain.grid(grid))
            tensor = np.tensordot(table, tensor, axes=([1], [j]))
            # tensordot moved the new axis to the front; rotate it back to j.
            tensor = np.moveaxis(tensor, 0, j)
        syn._sums = tensor[tuple(syn.indices[:, j] for j in range(syn.ndim))].copy()
        syn._count = int(round(total))
        return syn

    # ------------------------------------------------------------------ #
    # combination and export
    # ------------------------------------------------------------------ #

    def merge(self, other: "CosineSynopsis") -> "CosineSynopsis":
        """Synopsis of the concatenation of two streams.

        Both synopses must agree on domains, order, truncation and grid.
        Because the stored sums are additive over tuples, merging is exact.
        """
        self._require_compatible(other)
        merged = CosineSynopsis(
            self.domains, order=self.order, truncation=self.truncation, grid=self.grid
        )
        merged._sums = self._sums + other._sums
        merged._count = self._count + other._count
        return merged

    def __add__(self, other: "CosineSynopsis") -> "CosineSynopsis":
        return self.merge(other)

    def _require_compatible(self, other: "CosineSynopsis") -> None:
        if not isinstance(other, CosineSynopsis):
            raise TypeError(f"expected CosineSynopsis, got {type(other).__name__}")
        if (
            self.domains != other.domains
            or self.order != other.order
            or self.truncation != other.truncation
            or self.grid != other.grid
        ):
            raise ValueError("synopses have incompatible domains or parameters")

    def truncated(self, order: int | None = None, budget: int | None = None) -> "CosineSynopsis":
        """A copy of this synopsis truncated to a smaller order or budget.

        Truncation only ever discards trailing (high-order) coefficients,
        so a synopsis maintained at a generous order can serve any smaller
        space budget exactly as if it had been built there — the experiment
        harness uses this to sweep budgets from one build.
        """
        if (order is None) == (budget is None):
            raise ValueError("specify exactly one of order= or budget=")
        if order is None:
            assert budget is not None
            order = order_for_budget(budget, self.ndim, self.truncation)
        if order > self.order:
            raise ValueError(f"cannot grow a synopsis (order {order} > {self.order})")
        smaller = CosineSynopsis(
            self.domains, order=order, truncation=self.truncation, grid=self.grid
        )
        position = {tuple(idx): i for i, idx in enumerate(self.indices)}
        take = np.array([position[tuple(idx)] for idx in smaller.indices], dtype=np.int64)
        smaller._sums = self._sums[take].copy()
        smaller._count = self._count
        return smaller

    def dense_tensor(self, order: int | None = None) -> NDArray[Any]:
        """Coefficients scattered into a dense ``(order,)*ndim`` tensor.

        Truncated-away entries are zero.  ``order`` may shrink the tensor
        (dropping high-order coefficients) but not grow it beyond
        ``self.order``.  Used by the multi-join contraction estimator.
        """
        if order is None:
            order = self.order
        if order > self.order:
            raise ValueError(f"cannot expand to order {order} > stored order {self.order}")
        keep = np.all(self.indices < order, axis=1)
        return scatter_to_dense(self.indices[keep], self.coefficients[keep], order)

    def reconstruct_counts(self) -> NDArray[Any]:
        """Approximate joint frequency tensor implied by the synopsis.

        Inverts the truncated transform on the grid; with a full coefficient
        set on the midpoint grid the reconstruction is exact.  Mostly a
        diagnostic / teaching aid (and the basis of range-query estimation).
        """
        tensor = scatter_to_dense(self.indices, self.coefficients, self.order)
        for j, domain in enumerate(self.domains):
            table = phi_block(self.order, domain.grid(self.grid))
            tensor = np.tensordot(tensor, table, axes=([j], [0]))
            tensor = np.moveaxis(tensor, -1, j)
            tensor = tensor / domain.size
        return tensor * self._count

    def state_dict(self) -> dict[str, Any]:
        """Mutable state only (sums + count), for engine checkpoints.

        Unlike :meth:`to_dict` this omits the structural parameters —
        the checkpoint stores the query spec separately and rebuilds the
        synopsis from it, then restores the numeric state in place with
        :meth:`load_state` so estimate closures keep their object.
        """
        return {"sums": self._sums.copy(), "count": self._count}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`, in place."""
        sums = np.asarray(state["sums"], dtype=float)
        if sums.shape != self._sums.shape:
            raise ValueError(
                f"checkpointed synopsis has {sums.shape[0]} coefficients, "
                f"this synopsis stores {self._sums.shape[0]}"
            )
        self._sums = sums.copy()
        self._count = int(state["count"])

    def to_dict(self) -> dict[str, Any]:
        """Serialize to plain Python types (JSON-compatible)."""
        return {
            "ndim": self.ndim,
            "order": self.order,
            "truncation": self.truncation,
            "grid": self.grid,
            "count": self._count,
            "sums": self._sums.tolist(),
            "domains": [
                {"size": d.size, "low": d.low}
                if not d.is_categorical
                else {"categories": list(d._categories or ())}
                for d in self.domains
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CosineSynopsis":
        """Inverse of :meth:`to_dict`."""
        domains = []
        for spec in payload["domains"]:
            if "categories" in spec:
                domains.append(Domain.categorical(spec["categories"]))
            else:
                domains.append(Domain.integer_range(spec["low"], spec["low"] + spec["size"] - 1))
        syn = cls(
            domains,
            order=payload["order"],
            truncation=payload["truncation"],
            grid=payload["grid"],
        )
        sums = np.asarray(payload["sums"], dtype=float)
        if sums.shape != syn._sums.shape:
            raise ValueError("serialized coefficient count does not match parameters")
        syn._sums = sums
        syn._count = int(payload["count"])
        return syn


def synopses_for_budget(
    domains_per_relation: Iterable[Sequence[Domain] | Domain],
    budget: int,
    truncation: str = "triangular",
    grid: GridKind = "midpoint",
) -> list[CosineSynopsis]:
    """Create one synopsis per relation, each under the same space budget.

    Convenience mirroring the paper's experimental setup, where every method
    gets the same per-relation number of coefficients / atomic sketches.
    """
    return [
        CosineSynopsis(domains, budget=budget, truncation=truncation, grid=grid)
        for domains in domains_per_relation
    ]
