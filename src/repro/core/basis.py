"""Cosine basis functions and discrete grids.

This module implements the orthonormal cosine basis used throughout the
paper (section 3.2):

    phi_0(x) = 1
    phi_k(x) = sqrt(2) * cos(k * pi * x),   k >= 1

together with the two discretizations of a size-``n`` attribute domain onto
the unit interval:

``midpoint`` grid (default)
    ``x_j = (2j + 1) / (2n)`` for ``j = 0..n-1``.  On this grid the basis is
    *exactly* orthonormal under the uniform discrete measure, which is what
    makes Parseval's identity (paper Eq. 4.2) — and therefore exact join-size
    recovery from the full coefficient set (Eq. 4.3) — hold.  The paper's own
    best-case analysis (Eq. 4.10) evaluates the basis on this grid.

``endpoint`` grid
    ``x_j = j / (n - 1)`` — the literal section 3.1 normalization
    ``(x - min) / (max - min)``.  Kept for fidelity; Parseval is only
    approximate here (see ``tests/core/test_basis.py``).
"""

from __future__ import annotations

from typing import Any, Literal

import numpy as np
from numpy.typing import NDArray
from scipy.fft import dct

GridKind = Literal["midpoint", "endpoint"]

#: Normalization factor of the non-constant basis functions.
SQRT2 = float(np.sqrt(2.0))


def midpoint_grid(n: int) -> NDArray[Any]:
    """Return the DCT-II midpoint grid ``(2j+1)/(2n)``, ``j = 0..n-1``."""
    if n < 1:
        raise ValueError(f"domain size must be >= 1, got {n}")
    return (2.0 * np.arange(n) + 1.0) / (2.0 * n)


def endpoint_grid(n: int) -> NDArray[Any]:
    """Return the endpoint grid ``j/(n-1)`` (section 3.1 normalization).

    For ``n == 1`` the single point maps to 0.5 so that a degenerate domain
    still lies inside the unit interval.
    """
    if n < 1:
        raise ValueError(f"domain size must be >= 1, got {n}")
    if n == 1:
        return np.array([0.5])
    return np.arange(n) / (n - 1.0)


def make_grid(n: int, kind: GridKind = "midpoint") -> NDArray[Any]:
    """Return the grid of ``n`` normalized positions for the given kind."""
    if kind == "midpoint":
        return midpoint_grid(n)
    if kind == "endpoint":
        return endpoint_grid(n)
    raise ValueError(f"unknown grid kind: {kind!r}")


def phi(k: NDArray[Any] | int, x: NDArray[Any] | float) -> NDArray[Any]:
    """Evaluate ``phi_k(x)`` with numpy broadcasting over ``k`` and ``x``.

    ``phi_0(x) = 1`` and ``phi_k(x) = sqrt(2) cos(k pi x)`` for ``k >= 1``.
    The result has the broadcast shape of ``k`` and ``x``.
    """
    k_arr = np.asarray(k)
    x_arr = np.asarray(x, dtype=float)
    values = SQRT2 * np.cos(k_arr * np.pi * x_arr)
    return np.where(k_arr == 0, 1.0, values)


def basis_matrix(orders: NDArray[Any], positions: NDArray[Any]) -> NDArray[Any]:
    """Return the matrix ``P[i, j] = phi_{orders[i]}(positions[j])``.

    ``orders`` is a 1-d integer array of basis orders, ``positions`` a 1-d
    array of normalized positions; the result has shape
    ``(len(orders), len(positions))``.
    """
    orders = np.asarray(orders, dtype=np.int64)
    positions = np.asarray(positions, dtype=float)
    return phi(orders[:, None], positions[None, :])


def coefficients_from_counts(
    counts: NDArray[Any],
    orders: NDArray[Any] | None = None,
    grid: GridKind = "midpoint",
) -> NDArray[Any]:
    """Compute cosine coefficients of a 1-d frequency vector (paper Eq. 3.2).

    ``counts[j]`` is the number of stream elements holding the j-th domain
    value.  The coefficient of order ``k`` is

        a_k = (1/N) * sum_j counts[j] * phi_k(x_j),   N = sum_j counts[j].

    ``orders`` defaults to all ``0..n-1``; a truncated order list computes
    only the requested coefficients.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1:
        raise ValueError("counts must be a 1-d frequency vector")
    n = counts.shape[0]
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot compute coefficients of an empty stream")
    if orders is None:
        orders = np.arange(n)
    positions = make_grid(n, grid)
    return basis_matrix(np.asarray(orders), positions) @ counts / total


def coefficients_via_scipy_dct(counts: NDArray[Any]) -> NDArray[Any]:
    """Compute the full midpoint-grid coefficient vector via ``scipy.fft.dct``.

    scipy's type-II DCT returns ``y_k = 2 * sum_j counts[j] cos(pi k (2j+1) / (2n))``,
    so ``a_k = sqrt(2) * y_k / (2 N)`` for ``k >= 1`` and ``a_0 = 1``.  This is
    an O(n log n) batch builder and a cross-check of
    :func:`coefficients_from_counts`.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1:
        raise ValueError("counts must be a 1-d frequency vector")
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot compute coefficients of an empty stream")
    raw = dct(counts, type=2, norm=None)
    coeffs = SQRT2 * raw / (2.0 * total)
    coeffs[0] = 1.0
    return coeffs


def reconstruct_frequencies(
    coefficients: NDArray[Any],
    orders: NDArray[Any],
    n: int,
    grid: GridKind = "midpoint",
) -> NDArray[Any]:
    """Reconstruct the (relative) frequency function from coefficients.

    Inverts the expansion on the discrete grid:
    ``f(x_j) = (1/n) * sum_k a_k phi_k(x_j)`` (exact on the midpoint grid when
    all ``n`` coefficients are supplied).  Returns an array of length ``n``
    summing to ~1 for a full, midpoint-grid coefficient set.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    positions = make_grid(n, grid)
    return coefficients @ basis_matrix(np.asarray(orders), positions) / n


def orthogonality_gram(n: int, grid: GridKind = "midpoint") -> NDArray[Any]:
    """Return the Gram matrix ``G[k,l] = (1/n) sum_j phi_k(x_j) phi_l(x_j)``.

    On the midpoint grid this is the identity; on the endpoint grid it is
    only approximately so.  Used by tests and the grid-choice ablation.
    """
    positions = make_grid(n, grid)
    mat = basis_matrix(np.arange(n), positions)
    return (mat @ mat.T) / n
