"""Exponentially time-decayed cosine synopses.

A streaming extension beyond the paper: continuous queries often care more
about recent tuples than ancient ones.  Because the cosine synopsis is a
linear functional of the stream, exponential decay composes cleanly with
it: a tuple inserted at time ``t`` should carry weight ``exp(-gamma (T - t))``
when the synopsis is read at time ``T``, and that is achieved by scaling
the *whole* stored state by ``exp(-gamma dt)`` whenever the clock advances
— O(coefficients) per advance, amortized into updates.

The decayed synopsis estimates the decayed join size

    J_gamma(T) = sum_v f1_gamma(v, T) * f2_gamma(v, T)

where ``f_gamma(v, T) = sum_{tuples with value v} exp(-gamma (T - t_i))``
— exactly the paper's Eq. 4.3 with decayed frequencies (and exactly
recovered at full coefficient budget, see the tests).  ``gamma = 0``
degenerates to the ordinary synopsis.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from .basis import GridKind
from .normalization import Domain
from .synopsis import CosineSynopsis


class DecayedCosineSynopsis:
    """A cosine synopsis under exponential time decay.

    Wraps a :class:`CosineSynopsis`' coefficient state with a decayed
    weighted count.  Timestamps must be non-decreasing; reading at an
    earlier time than the last update is an error (streams do not rewind).
    """

    def __init__(
        self,
        domains: Sequence[Domain] | Domain,
        gamma: float,
        order: int | None = None,
        budget: int | None = None,
        truncation: str = "triangular",
        grid: GridKind = "midpoint",
    ) -> None:
        if gamma < 0:
            raise ValueError(f"decay rate must be >= 0, got {gamma}")
        self.gamma = gamma
        self._inner = CosineSynopsis(
            domains, order=order, budget=budget, truncation=truncation, grid=grid
        )
        self._weighted_count = 0.0
        self._clock = 0.0

    # ------------------------------------------------------------------ #

    @property
    def domains(self) -> tuple[Domain, ...]:
        return self._inner.domains

    @property
    def order(self) -> int:
        return self._inner.order

    @property
    def grid(self) -> GridKind:
        return self._inner.grid

    @property
    def num_coefficients(self) -> int:
        return self._inner.num_coefficients

    @property
    def clock(self) -> float:
        """The time of the most recent update or read."""
        return self._clock

    @property
    def weighted_count(self) -> float:
        """The decayed stream weight ``sum_i exp(-gamma (clock - t_i))``."""
        return self._weighted_count

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward, decaying all stored state."""
        if timestamp < self._clock:
            raise ValueError(
                f"time moves forward only (clock {self._clock}, got {timestamp})"
            )
        if self.gamma == 0 or timestamp == self._clock:
            self._clock = timestamp
            return
        factor = math.exp(-self.gamma * (timestamp - self._clock))
        self._inner._sums *= factor
        self._weighted_count *= factor
        self._clock = timestamp

    def insert(
        self, values: Sequence[Any] | NDArray[Any] | object, timestamp: float
    ) -> None:
        """Process one arrival at the given (non-decreasing) timestamp."""
        self.advance_to(timestamp)
        # the inner synopsis accumulates the tuple's basis products into its
        # sums; its integer count is unused here — the decayed weight below
        # is this synopsis' notion of stream size
        self._inner.insert(values)
        self._weighted_count += 1.0

    def coefficients(self) -> NDArray[Any]:
        """Decayed coefficients ``a_k = S_k / W`` at the current clock."""
        if self._weighted_count <= 0:
            raise ValueError("synopsis holds no (undecayed) mass")
        return self._inner._sums / self._weighted_count

    def reconstruct_decayed_counts(self) -> NDArray[Any]:
        """Decayed frequency tensor implied by the synopsis (diagnostic).

        ``CosineSynopsis.reconstruct_counts`` inverts the transform of the
        raw stored sums (its normalization by the tuple count cancels), so
        applying it to the decayed sums yields the decayed counts directly.
        """
        return self._inner.reconstruct_counts()


def estimate_decayed_join_size(
    a: DecayedCosineSynopsis, b: DecayedCosineSynopsis, timestamp: float | None = None
) -> float:
    """Estimate the decayed equi-join size at a common read time.

    Both synopses are advanced to ``timestamp`` (default: the later of the
    two clocks) and the Eq. 4.4 dot product is evaluated on the decayed
    coefficients and weights.
    """
    if a.domains[0].size != b.domains[0].size or len(a.domains) != 1 or len(b.domains) != 1:
        raise ValueError(
            "decayed join estimation expects single-attribute synopses over "
            "the same unified domain"
        )
    if a.grid != b.grid:
        raise ValueError(f"synopses use different grids: {a.grid!r} vs {b.grid!r}")
    read_time = max(a.clock, b.clock) if timestamp is None else timestamp
    a.advance_to(read_time)
    b.advance_to(read_time)
    m = min(a.order, b.order)
    n = a.domains[0].size
    dot = float(np.dot(a.coefficients()[:m], b.coefficients()[:m]))
    return a.weighted_count * b.weighted_count / n * dot
