"""Analytic error bounds for cosine-series join estimation (section 4.3).

The paper derives, for two streams of equal size ``N`` over a join domain of
size ``n`` with ``m`` retained coefficients:

* absolute error bound (Eq. 4.7):   ``|J - Est| <= 2 N^2 (n - m) / n``
* relative error bound (Eq. 4.8):   ``|J - Est| / J <= 2 N^2 (n - m) / (J n)``
* coefficient budget for error e (Eq. 4.9): ``m = n - floor(e J n / (2 N^2))``
* worst case, single-valued streams (Eq. 4.12): ``m = n - floor(e n / 2)``

and contrasts them with the sketch space bounds (section 4.3): basic sketch
best case ``Omega(N^2 / J)``, worst case ``O(N^4 / J^2)``; skimmed sketch
``Theta(N^2 / J)`` valid above the sanity bound ``J >= N^{3/2}`` (plus its
hidden ``O(n)`` dense-frequency storage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def absolute_error_bound(n1: int, n2: int, domain_size: int, num_coefficients: int) -> float:
    """Deterministic bound on ``|J - Est|`` (generalization of Eq. 4.7).

    Follows from ``|a_k|, |b_k| <= sqrt(2)``: the dropped tail of the
    coefficient dot product is at most ``2 (n - m)`` terms of magnitude
    ``N1 N2 / n`` each.
    """
    _check_space(domain_size, num_coefficients)
    return 2.0 * n1 * n2 * (domain_size - num_coefficients) / domain_size


def relative_error_bound(
    join_size: float, n1: int, n2: int, domain_size: int, num_coefficients: int
) -> float:
    """Bound on the relative error ``|J - Est| / J`` (Eq. 4.8)."""
    if join_size <= 0:
        raise ValueError("the relative error bound assumes J > 0")
    return absolute_error_bound(n1, n2, domain_size, num_coefficients) / join_size


def coefficients_for_relative_error(
    error: float, join_size: float, stream_size: int, domain_size: int
) -> int:
    """Coefficient budget guaranteeing relative error ``<= error`` (Eq. 4.9).

    ``m = n - floor(e J n / (2 N^2))``, clamped to ``[1, n]``.  Note the
    guarantee is worst-case over all distributions; actual budgets needed
    are usually far smaller (that is the point of the experiments).
    """
    if not 0 < error:
        raise ValueError("error threshold must be positive")
    if join_size <= 0:
        raise ValueError("Eq. 4.9 assumes a positive join size")
    slack = math.floor(error * join_size * domain_size / (2.0 * stream_size**2))
    return int(min(max(domain_size - slack, 1), domain_size))


def worst_case_coefficients(error: float, domain_size: int) -> int:
    """Coefficient budget in the DCT worst case (Eq. 4.12).

    Both streams hold a single identical value, so ``J = N^2`` and the
    budget degenerates to ``m = n - floor(e n / 2)`` — near-linear in the
    domain size for small ``e``.  (The sketches are exact here with O(1)
    space; section 4.3.2.)
    """
    if not 0 < error:
        raise ValueError("error threshold must be positive")
    if domain_size < 1:
        raise ValueError("domain size must be >= 1")
    return int(min(max(domain_size - math.floor(error * domain_size / 2.0), 1), domain_size))


@dataclass(frozen=True)
class SketchSpaceBounds:
    """Sketch space bounds quoted in section 4.3, in atomic-sketch units."""

    basic_best: float
    basic_worst: float
    skimmed: float
    skimmed_sanity_bound: float
    skimmed_extra_dense_space: int


def sketch_space_bounds(stream_size: int, join_size: float, domain_size: int) -> SketchSpaceBounds:
    """Evaluate the section 4.3 sketch bounds for a concrete instance.

    Returns asymptotic expressions evaluated without hidden constants — they
    are for *comparative* reasoning (as in the paper), not exact budgets.
    ``skimmed_sanity_bound`` is ``N^{3/2}``: below that join size the
    skimmed bound is not valid.  ``skimmed_extra_dense_space`` records the
    hidden O(n) dense-frequency storage.
    """
    if join_size <= 0:
        raise ValueError("join size must be positive")
    n_sq = float(stream_size) ** 2
    return SketchSpaceBounds(
        basic_best=n_sq / join_size,
        basic_worst=n_sq**2 / join_size**2,
        skimmed=n_sq / join_size,
        skimmed_sanity_bound=float(stream_size) ** 1.5,
        skimmed_extra_dense_space=domain_size,
    )


def _check_space(domain_size: int, num_coefficients: int) -> None:
    if domain_size < 1:
        raise ValueError("domain size must be >= 1")
    if not 1 <= num_coefficients <= domain_size:
        raise ValueError(
            f"coefficient count must be in [1, {domain_size}], got {num_coefficients}"
        )
