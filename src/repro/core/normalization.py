"""Attribute domains and normalization onto the unit interval.

Implements section 3.1 (mapping attribute values into [0, 1]) and section
4.1 (unifying the domains of a join-attribute pair before normalization, by
extending both attributes to ``[min(l_A, l_B), max(r_A, r_B)]`` with zero
frequency outside their original ranges).

A :class:`Domain` describes the *discrete* set of values an attribute can
take — either a dense integer range or an explicit categorical value list —
and knows how to map raw values to domain indices ``0..n-1`` and onto a
normalized grid (see :mod:`repro.core.basis` for the two grid kinds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

import numpy as np
from numpy.typing import NDArray

from .basis import GridKind, make_grid


@dataclass(frozen=True)
class Domain:
    """A discrete attribute domain of ``size`` distinct values.

    Use the constructors :meth:`integer_range` and :meth:`categorical`
    rather than instantiating directly.
    """

    size: int
    low: int | None = None
    _categories: tuple[Hashable, ...] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"domain size must be >= 1, got {self.size}")

    @classmethod
    def integer_range(cls, low: int, high: int) -> "Domain":
        """Domain of the consecutive integers ``low..high`` (inclusive)."""
        if high < low:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return cls(size=high - low + 1, low=low)

    @classmethod
    def of_size(cls, n: int) -> "Domain":
        """Domain of the integers ``0..n-1`` — the common benchmark shape."""
        return cls.integer_range(0, n - 1)

    @classmethod
    def categorical(cls, values: Sequence[Hashable]) -> "Domain":
        """Domain of arbitrary hashable values, mapped to indices by position.

        This realizes the section 3.1 remark that categorical attributes are
        handled "by mapping each categorical value to a distinct number".
        """
        cats = tuple(values)
        if not cats:
            raise ValueError("categorical domain needs at least one value")
        if len(set(cats)) != len(cats):
            raise ValueError("categorical domain values must be distinct")
        return cls(size=len(cats), low=None, _categories=cats)

    @property
    def is_categorical(self) -> bool:
        return self._categories is not None

    @property
    def high(self) -> int | None:
        """Inclusive upper bound for integer-range domains, else ``None``."""
        if self.low is None:
            return None
        return self.low + self.size - 1

    def indices_of(self, values: NDArray[Any] | Sequence[Hashable]) -> NDArray[Any]:
        """Map raw attribute values to domain indices ``0..size-1``.

        Raises ``ValueError`` on any value outside the domain.
        """
        if self._categories is not None:
            lookup = {v: i for i, v in enumerate(self._categories)}
            try:
                return np.array([lookup[v] for v in values], dtype=np.int64)
            except KeyError as exc:
                raise ValueError(f"value {exc.args[0]!r} not in categorical domain") from exc
        arr = np.asarray(values)
        assert self.low is not None
        if arr.dtype == np.int64 and self.low == 0:
            # Zero-copy fast path: int64 values over a 0-based domain are
            # already their own indices — bounds-check and return the
            # caller's array unchanged (callers treat indices as read-only).
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.size):
                bad = arr[(arr < 0) | (arr >= self.size)]
                raise ValueError(
                    f"values outside integer domain [{self.low}, {self.high}]: {bad[:5]}"
                )
            return arr
        idx = arr.astype(np.int64) - self.low
        if np.any(arr != idx + self.low):
            raise ValueError("non-integer values in an integer-range domain")
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            bad = arr[(idx < 0) | (idx >= self.size)]
            raise ValueError(
                f"values outside integer domain [{self.low}, {self.high}]: {bad[:5]}"
            )
        return idx

    def index_of(self, value: Hashable) -> int:
        """Map a single raw value to its domain index."""
        return int(self.indices_of([value])[0])

    def contains(self, values: NDArray[Any] | Sequence[Hashable]) -> NDArray[Any]:
        """Boolean membership mask for a batch of raw values.

        The non-raising counterpart of :meth:`indices_of`, used by the
        dead-letter ingest validation: out-of-range, non-integer,
        non-finite, and unknown-category values all simply map to
        ``False``.
        """
        if self._categories is not None:
            known = set(self._categories)

            def member(v: Any) -> bool:
                try:
                    return v in known
                except TypeError:  # unhashable values are never members
                    return False

            return np.array([member(v) for v in values], dtype=bool)
        arr = np.asarray(values)
        assert self.low is not None
        if arr.dtype == object or not np.issubdtype(arr.dtype, np.number):
            out = np.zeros(len(arr), dtype=bool)
            for i, v in enumerate(arr):
                if isinstance(v, (int, np.integer)) or (
                    isinstance(v, (float, np.floating)) and float(v).is_integer()
                ):
                    out[i] = self.low <= int(v) <= self.high
            return out
        if np.issubdtype(arr.dtype, np.complexfloating):
            return np.zeros(arr.shape[0], dtype=bool)
        mask = np.ones(arr.shape, dtype=bool)
        if np.issubdtype(arr.dtype, np.floating):
            mask &= np.isfinite(arr)
            safe = np.where(mask, arr, self.low)
            mask &= safe == np.floor(safe)
        values_int = np.where(mask, arr, self.low).astype(np.int64)
        mask &= (values_int >= self.low) & (values_int <= self.high)
        return mask

    def grid(self, kind: GridKind = "midpoint") -> NDArray[Any]:
        """Normalized positions of all domain values on the given grid."""
        return make_grid(self.size, kind)

    def positions_of(
        self, values: NDArray[Any] | Sequence[Hashable], kind: GridKind = "midpoint"
    ) -> NDArray[Any]:
        """Normalized [0, 1] positions of raw values (section 3.1)."""
        idx = self.indices_of(values)
        if kind == "midpoint":
            return (2.0 * idx + 1.0) / (2.0 * self.size)
        if self.size == 1:
            return np.full(idx.shape, 0.5)
        return idx / (self.size - 1.0)


def unify_domains(a: Domain, b: Domain) -> Domain:
    """Return the unified domain of a join-attribute pair (section 4.1).

    For integer ranges this is ``[min(l_A, l_B), max(r_A, r_B)]`` — values a
    relation never holds simply have frequency zero.  Categorical domains
    unify by the union of their value sets (categories of ``a`` first, then
    the categories only in ``b``, preserving order).
    """
    if a.is_categorical != b.is_categorical:
        raise ValueError("cannot unify a categorical domain with an integer range")
    if a.is_categorical:
        assert a._categories is not None and b._categories is not None
        seen = set(a._categories)
        merged = list(a._categories) + [v for v in b._categories if v not in seen]
        return Domain.categorical(merged)
    assert a.low is not None and b.low is not None and a.high is not None and b.high is not None
    return Domain.integer_range(min(a.low, b.low), max(a.high, b.high))


def embed_counts(counts: NDArray[Any], original: Domain, unified: Domain) -> NDArray[Any]:
    """Re-index a frequency vector from its original domain into a unified one.

    Positions outside the original domain get frequency zero, per the
    section 4.1 convention.
    """
    counts = np.asarray(counts)
    if counts.shape[0] != original.size:
        raise ValueError(
            f"counts length {counts.shape[0]} does not match domain size {original.size}"
        )
    if original.is_categorical or unified.is_categorical:
        assert original._categories is not None
        out = np.zeros(unified.size, dtype=counts.dtype)
        idx = unified.indices_of(original._categories)
        out[idx] = counts
        return out
    assert original.low is not None and unified.low is not None
    offset = original.low - unified.low
    if offset < 0 or offset + original.size > unified.size:
        raise ValueError("original domain does not fit inside the unified domain")
    out = np.zeros(unified.size, dtype=counts.dtype)
    out[offset : offset + original.size] = counts
    return out
