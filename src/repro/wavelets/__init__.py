"""Haar wavelet synopsis baseline (the section 2 wavelet family)."""

from .haar import (
    HaarSynopsis,
    estimate_join_size,
    haar_transform,
    inverse_haar_transform,
)

__all__ = [
    "HaarSynopsis",
    "estimate_join_size",
    "haar_transform",
    "inverse_haar_transform",
]
