"""Haar wavelet synopses — the remaining synopsis family of section 2.

The paper surveys wavelet-compressed histograms (its references [6, 7, 23,
24, 27]) as the main alternative transform-based synopsis and argues they
fit streams poorly: keeping the *largest* coefficients (the standard
wavelet thresholding) is order-dependent and hard to maintain under
updates, and Gilbert et al. [12] showed the exact top-coefficient synopsis
can need space linear in the stream.  This module implements the family so
the comparison is reproducible:

* :func:`haar_transform` / :func:`inverse_haar_transform` — the orthonormal
  Haar transform of a frequency vector (power-of-two padded);
* :class:`HaarSynopsis` — a top-``m``-coefficient synopsis built from
  counts, with the same join-estimation algebra as the cosine synopsis
  (Haar is orthonormal, so Parseval gives
  ``J = sum_k w_k(R1) * w_k(R2)`` over coefficients kept by *both*);
* a streaming update path, which must keep the full coefficient vector
  live (O(log n) of them change per tuple) and re-threshold on demand —
  demonstrating exactly the maintenance asymmetry the paper points out.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain


def _padded_size(n: int) -> int:
    size = 1
    while size < n:
        size *= 2
    return size


def haar_transform(values: NDArray[Any]) -> NDArray[Any]:
    """Orthonormal Haar transform of a vector (zero-padded to 2^k).

    Returns the full coefficient vector; ``inverse_haar_transform``
    round-trips exactly.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("haar_transform expects a 1-d vector")
    size = _padded_size(values.shape[0])
    data = np.zeros(size)
    data[: values.shape[0]] = values
    output = np.empty_like(data)
    length = size
    while length > 1:
        half = length // 2
        evens = data[0:length:2]
        odds = data[1:length:2]
        output[:half] = (evens + odds) / np.sqrt(2.0)
        output[half:length] = (evens - odds) / np.sqrt(2.0)
        data[:length] = output[:length]
        length = half
    return data


def inverse_haar_transform(coefficients: NDArray[Any], n: int | None = None) -> NDArray[Any]:
    """Invert :func:`haar_transform`; optionally trim padding back to ``n``."""
    coefficients = np.asarray(coefficients, dtype=float)
    size = coefficients.shape[0]
    if size & (size - 1):
        raise ValueError("coefficient vector length must be a power of two")
    data = coefficients.copy()
    length = 2
    while length <= size:
        half = length // 2
        evens = (data[:half] + data[half:length]) / np.sqrt(2.0)
        odds = (data[:half] - data[half:length]) / np.sqrt(2.0)
        merged = np.empty(length)
        merged[0:length:2] = evens
        merged[1:length:2] = odds
        data[:length] = merged
        length *= 2
    return data if n is None else data[:n]


class HaarSynopsis:
    """Top-``m`` Haar coefficient synopsis of a stream's frequency vector.

    Space accounting mirrors the other methods, with one honest difference
    the paper stresses: unlike cosine coefficients, *which* coefficients
    are retained depends on the data, so each kept coefficient also costs
    its index (``num_stored`` reports both).  The streaming update path
    maintains the full transform (O(log n) coefficients change per tuple)
    and thresholds at read time — the maintenance weakness of the family.
    """

    # Structural parameters: a restored synopsis is always constructed with
    # the same spec first, so only the coefficients travel in checkpoints.
    _checkpoint_exempt = ("_size", "budget", "domain")

    def __init__(self, domain: Domain, budget: int) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.domain = domain
        self.budget = budget
        self._size = _padded_size(domain.size)
        self._coefficients = np.zeros(self._size)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def num_stored(self) -> tuple[int, int]:
        """(coefficients kept, indexes kept) under the budget."""
        kept = min(self.budget, int(np.count_nonzero(self._coefficients)))
        return kept, kept

    @classmethod
    def from_counts(cls, domain: Domain, counts: NDArray[Any], budget: int) -> "HaarSynopsis":
        """Build from a frequency vector (transform + threshold lazily)."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (domain.size,):
            raise ValueError(f"counts shape {counts.shape} != ({domain.size},)")
        synopsis = cls(domain, budget)
        synopsis._coefficients = haar_transform(counts)
        synopsis._count = int(round(counts.sum()))
        return synopsis

    def state_dict(self) -> dict[str, Any]:
        """Mutable state only (full coefficient vector + count)."""
        return {"coefficients": self._coefficients.copy(), "count": self._count}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`, in place."""
        coefficients = np.asarray(state["coefficients"], dtype=float)
        if coefficients.shape != self._coefficients.shape:
            raise ValueError(
                f"checkpointed synopsis has {coefficients.shape[0]} coefficients, "
                f"this synopsis stores {self._coefficients.shape[0]}"
            )
        self._coefficients = coefficients.copy()
        self._count = int(state["count"])

    def update(self, value: Any, weight: int = 1) -> None:
        """Process one insertion/deletion.

        A unit change at position ``j`` touches exactly one coefficient per
        resolution level — O(log n) work — but the synopsis must keep the
        *full* vector to know, at read time, which coefficients are large.
        """
        index = self.domain.index_of(value)
        size = self._size
        # Overall-average coefficient: sensitivity 1/sqrt(size) per unit.
        self._coefficients[0] += weight / np.sqrt(size)
        # Detail coefficients: the pass over `length` inputs stores its
        # details at positions [length/2, length) of the final layout, and
        # a unit at `index` hits exactly one detail per pass, with sign by
        # the parity of its position within that pass and magnitude
        # (1/sqrt(2))^pass = 1/sqrt(size / half).
        length = size
        position = index
        while length > 1:
            half = length // 2
            sign = 1.0 if position % 2 == 0 else -1.0
            self._coefficients[half + position // 2] += (
                weight * sign / np.sqrt(size / half)
            )
            position //= 2
            length = half
        self._count += weight

    def update_batch(self, values: Sequence[Any] | NDArray[Any], weight: int = 1) -> None:
        """Process a batch of insertions (``weight=1``) or deletions (-1).

        Identical final state to calling :meth:`update` per value (up to
        float summation order): duplicates are aggregated first, then each
        resolution level's touched coefficients get one scatter-add, so the
        work is O(distinct values x log n) instead of O(values x log n).
        """
        indices = self.domain.indices_of(values)
        if indices.size == 0:
            return
        unique, multiplicity = np.unique(indices, return_counts=True)
        mass = weight * multiplicity.astype(float)
        size = self._size
        self._coefficients[0] += mass.sum() / np.sqrt(size)
        length = size
        position = unique.copy()
        while length > 1:
            half = length // 2
            sign = np.where(position % 2 == 0, 1.0, -1.0)
            np.add.at(
                self._coefficients,
                half + position // 2,
                mass * sign / np.sqrt(size / half),
            )
            position //= 2
            length = half
        self._count += weight * int(indices.shape[0])

    def top_coefficients(self) -> tuple[NDArray[Any], NDArray[Any]]:
        """(indices, values) of the ``budget`` largest-|.| coefficients."""
        order = np.argsort(np.abs(self._coefficients))[::-1][: self.budget]
        return order, self._coefficients[order]

    def reconstruct_counts(self) -> NDArray[Any]:
        """Frequency vector implied by the thresholded synopsis."""
        kept = np.zeros(self._size)
        idx, vals = self.top_coefficients()
        kept[idx] = vals
        return inverse_haar_transform(kept, self.domain.size)


def estimate_join_size(a: HaarSynopsis, b: HaarSynopsis) -> float:
    """Equi-join estimate from two thresholded Haar synopses.

    Haar is orthonormal, so ``sum_v c1(v) c2(v) = sum_k w1_k w2_k``; the
    thresholded estimate keeps each side's top coefficients and sums the
    products over the union of kept positions (a position missing from a
    side contributes its stored value of zero).
    """
    if a.domain.size != b.domain.size:
        raise ValueError("join attributes must share the unified domain")
    idx_a, val_a = a.top_coefficients()
    idx_b, val_b = b.top_coefficients()
    sparse_a = dict(zip(idx_a.tolist(), val_a.tolist()))
    total = 0.0
    lookup_b = dict(zip(idx_b.tolist(), val_b.tolist()))
    for k, wa in sparse_a.items():
        wb = lookup_b.get(k)
        if wb is not None:
            total += wa * wb
    return total
