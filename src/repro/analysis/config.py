"""Per-rule configuration: shipped defaults + ``pyproject.toml`` overrides.

Every rule reads one mapping keyed by its kebab-case name.  The shipped
defaults below describe *this* repository (which paths must stay
deterministic, where the metric catalog and checkpoint-state manifest
live); a ``[tool.repro-analysis]`` table in ``pyproject.toml`` can
override any of it per project::

    [tool.repro-analysis]
    select = ["REP001", "REP004"]          # run only these rules
    baseline = "analysis-baseline.json"

    [tool.repro-analysis.shard-safety]
    deterministic-paths = ["repro/core", "repro/sharding"]

TOML parsing uses :mod:`tomllib` (Python 3.11+); on 3.10 the shipped
defaults apply and pyproject overrides are ignored (the CI gate runs on
3.12, so the enforced configuration is always the merged one).
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Any, Mapping

__all__ = ["DEFAULT_CONFIG", "load_config"]

#: Shipped per-rule defaults (rule name -> option mapping), plus the
#: engine-level keys ``select`` / ``ignore`` / ``baseline``.
DEFAULT_CONFIG: dict[str, Any] = {
    "select": [],  # empty = every registered rule
    "ignore": [],
    "baseline": "analysis-baseline.json",
    "metric-catalog": {
        # Metric names that must agree with the generated catalog.
        "prefix": "repro_",
        # Generated catalog module, relative to the project root.
        "catalog": "src/repro/obs/catalog.py",
    },
    "checkpoint-coverage": {
        # Generated state-shape manifest, relative to the project root.
        "manifest": "src/repro/resilience/state_manifest.py",
        # Module whose FORMAT_VERSION must be bumped on state-shape change.
        "format-source": "src/repro/resilience/checkpoint.py",
        # Class attribute naming __init__ state that is deliberately not
        # serialized (structural parameters rebuilt from the query spec).
        "exempt-attribute": "_checkpoint_exempt",
    },
    "shard-safety": {
        # Library paths that must stay deterministic: no wall-clock time,
        # no unseeded RNG (answer parity across shard replays depends on
        # it).  Matched as prefixes of the project-relative posix path.
        "deterministic-paths": [
            "src/repro/core",
            "src/repro/histograms",
            "src/repro/sampling",
            "src/repro/sharding",
            "src/repro/sketches",
            "src/repro/streams",
            "src/repro/wavelets",
        ],
    },
    "numeric-hygiene": {},
    "observer-protocol": {
        # Base classes whose subclasses must honour the observer protocol.
        "base-classes": ["StreamObserver"],
        # Methods that must never mutate observer/engine state.
        "read-only-methods": ["answer", "estimate", "state_dict"],
    },
    "executor-protocol": {
        # Base classes whose subclasses must honour the executor protocol.
        "base-classes": ["ShardExecutor"],
        # Methods every executor must implement itself (the base raises
        # NotImplementedError; broadcast/close have usable defaults).
        "required-methods": ["start", "call", "scatter"],
        # Protocol parameter names (after self) an override must keep, so
        # keyword call sites stay valid for every executor.
        "signatures": {
            "start": ["num_shards", "seed", "telemetry"],
            "call": ["shard", "method", "*args", "**kwargs"],
            "broadcast": ["method", "*args", "**kwargs"],
            "scatter": ["method", "per_shard"],
            "close": [],
        },
        # Executor dispatch (.call/.scatter/.broadcast on an executor
        # receiver) is only legitimate inside these layers; elsewhere it
        # bypasses journaling, partitioning, and degradation policy.
        "allowed-paths": ["src/repro/sharding", "src/repro/fleet"],
        "dispatch-methods": ["call", "scatter", "broadcast"],
    },
    "concurrency-discipline": {
        # Entry points the graph cannot discover statically: the HTTP
        # handler class is instantiated by socketserver per request, on
        # the metrics-server thread.
        "thread-roots": ["repro.obs.server._Handler"],
        # Telemetry objects every engine thread calls into concurrently;
        # all their methods count as concurrent entry points.
        "hot-path-classes": [
            "repro.obs.metrics.MetricsRegistry",
            "repro.obs.tracing.Tracer",
        ],
        # Modules where a lock-order inversion is reported (the repo's
        # multi-lock modules); inversions entirely outside are ignored.
        "lock-order-modules": [
            "src/repro/fleet/supervisor.py",
            "src/repro/obs/otel/export.py",
            "src/repro/obs/server.py",
        ],
    },
    "metric-drift": {
        "prefix": "repro_",
        "catalog": "src/repro/obs/catalog.py",
        # Full metric-name literals that are legitimately not catalogued
        # (e.g. negative fixtures in docs).
        "allow": [],
    },
    "checkpoint-completeness": {
        "exempt-attribute": "_checkpoint_exempt",
    },
    "async-safety": {
        # Coroutine bodies under these prefixes must not block the loop.
        "paths": ["src/repro"],
        "extra-blocking": [],
    },
    "hot-path": {
        # Per-tuple hot-path methods: flag allocation-heavy idioms inside.
        "functions": ["on_op", "process", "_process_inner"],
        # Only methods defined under these path prefixes are checked.
        "paths": ["src/repro/streams"],
        # Batch coefficient-maintenance code: basis tables must come from
        # the repro.fastpath seam (Chebyshev recurrence / compiled
        # kernels), never per-entry trig evaluation.
        "kernel-paths": [
            "src/repro/core/join.py",
            "src/repro/core/range_query.py",
            "src/repro/core/synopsis.py",
            "src/repro/sketches",
            "src/repro/streams",
        ],
        # Calls that reintroduce a bypass of the seam in those paths.
        "kernel-calls": ["basis_matrix", "np.cos", "numpy.cos", "phi"],
        # The blessed kernel implementations themselves, exempt.
        "kernel-seam": ["src/repro/fastpath"],
    },
}


def _merge(base: dict[str, Any], override: Mapping[str, Any]) -> dict[str, Any]:
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, Mapping) and isinstance(merged.get(key), dict):
            merged[key] = _merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _load_pyproject_table(root: Path) -> dict[str, Any]:
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
        return {}
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-analysis", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.repro-analysis] must be a table")
    return table


def load_config(root: Path, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Defaults, then ``pyproject.toml``, then explicit ``overrides``."""
    config = copy.deepcopy(DEFAULT_CONFIG)
    config = _merge(config, _load_pyproject_table(root))
    if overrides:
        config = _merge(config, overrides)
    return config
