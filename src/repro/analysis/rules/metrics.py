"""REP001: every ``repro_*`` metric must agree with the generated catalog.

:meth:`repro.obs.metrics.MetricsRegistry.merge` raises at runtime when
two shard registries hold the same metric name with a different kind or
label set — a failure mode that only appears once a fleet folds its
registries together.  This rule makes the contract static: every
``.counter("repro_...")`` / ``.gauge(...)`` / ``.histogram(...)``
registration anywhere in the tree must match the single generated
catalog (:mod:`repro.obs.catalog`, refreshed with
``python -m repro.analysis --update-metric-catalog``), and the catalog
must not carry stale entries.  Label tuples written as
``("relation", *extra)`` are the engine's optional-shard-suffix idiom
and match catalog entries flagged ``shard_suffix``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, string_tuple

__all__ = ["CatalogEntry", "MetricCatalogRule", "MetricSite", "load_catalog", "scan_metric_sites"]

_REGISTRY_METHODS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


@dataclass(frozen=True)
class MetricSite:
    """One registry registration call site."""

    source: SourceFile
    node: ast.Call
    name: str
    kind: str
    help: str
    labels: tuple[str, ...] | None  # None = not statically resolvable
    has_star: bool


@dataclass(frozen=True)
class CatalogEntry:
    kind: str
    labels: tuple[str, ...]
    shard_suffix: bool
    help: str


def scan_metric_sites(tree: SourceTree, prefix: str) -> list[MetricSite]:
    """Every ``.counter/.gauge/.histogram("<prefix>...")`` call in the tree."""
    sites: list[MetricSite] = []
    for source in tree:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            kind = _REGISTRY_METHODS.get(node.func.attr)
            if kind is None or not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue
            if not first.value.startswith(prefix):
                continue
            help_text = ""
            if len(node.args) > 1:
                second = node.args[1]
                if isinstance(second, ast.Constant) and isinstance(second.value, str):
                    help_text = second.value
            labels_node: ast.AST | None = node.args[2] if len(node.args) > 2 else None
            for keyword in node.keywords:
                if keyword.arg == "labelnames":
                    labels_node = keyword.value
                elif keyword.arg == "help":
                    value = keyword.value
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        help_text = value.value
            labels: tuple[str, ...] | None = ()
            has_star = False
            if labels_node is not None:
                resolved = string_tuple(labels_node)
                if resolved is None:
                    labels = None
                else:
                    labels, has_star = resolved
            sites.append(
                MetricSite(source, node, first.value, kind, help_text, labels, has_star)
            )
    return sites


def load_catalog(path: Path) -> dict[str, CatalogEntry] | None:
    """Parse ``METRIC_CATALOG`` out of the generated catalog module.

    The file is read as an AST literal, not imported, so the analysis
    stays independent of the package under inspection.  Returns ``None``
    when the file is missing or holds no catalog.
    """
    if not path.is_file():
        return None
    module = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in module.body:
        if not isinstance(node, ast.Assign):
            continue
        if any(isinstance(t, ast.Name) and t.id == "METRIC_CATALOG" for t in node.targets):
            raw = ast.literal_eval(node.value)
            catalog: dict[str, CatalogEntry] = {}
            for name, entry in raw.items():
                catalog[str(name)] = CatalogEntry(
                    kind=str(entry["kind"]),
                    labels=tuple(str(label) for label in entry["labels"]),
                    shard_suffix=bool(entry.get("shard_suffix", False)),
                    help=str(entry.get("help", "")),
                )
            return catalog
    return None


class MetricCatalogRule(Rule):
    code = "REP001"
    name = "metric-catalog"
    description = (
        "repro_* metric registrations must match the generated catalog "
        "(name, kind, and label set), so sharded registries stay mergeable"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        prefix = str(options.get("prefix", "repro_"))
        catalog_rel = str(options.get("catalog", "src/repro/obs/catalog.py"))
        catalog_path = tree.root / catalog_rel
        catalog = load_catalog(catalog_path)
        sites = scan_metric_sites(tree, prefix)
        findings: list[Finding] = []
        hint = "regenerate with `python -m repro.analysis --update-metric-catalog`"
        for site in sites:
            if site.labels is None:
                findings.append(
                    self.finding(
                        site.source,
                        site.node,
                        f"metric {site.name!r}: labelnames are not a literal "
                        "tuple of strings, so catalog conformance cannot be "
                        "checked statically",
                    )
                )
                continue
            entry = None if catalog is None else catalog.get(site.name)
            if entry is None:
                where = "missing" if catalog is None else "not in"
                findings.append(
                    self.finding(
                        site.source,
                        site.node,
                        f"metric {site.name!r} is {where} the catalog "
                        f"{catalog_rel}; {hint}",
                    )
                )
                continue
            if entry.kind != site.kind:
                findings.append(
                    self.finding(
                        site.source,
                        site.node,
                        f"metric {site.name!r} is registered as a {site.kind} "
                        f"here but catalogued as a {entry.kind}; "
                        "MetricsRegistry.merge would raise on this drift",
                    )
                )
                continue
            if not _labels_match(site, entry):
                expected = _expected_labels_text(entry)
                got = "(" + ", ".join(site.labels) + (", *shard" if site.has_star else "") + ")"
                findings.append(
                    self.finding(
                        site.source,
                        site.node,
                        f"metric {site.name!r} is registered with labels {got} "
                        f"but catalogued with {expected}; "
                        "MetricsRegistry.merge would raise on this drift",
                    )
                )
        if catalog:
            used = {site.name for site in sites}
            anchor = tree.by_rel_path(catalog_rel)
            for name in sorted(set(catalog) - used):
                message = (
                    f"catalog entry {name!r} matches no registration site; {hint}"
                )
                if anchor is not None:
                    findings.append(self.finding(anchor, anchor.tree, message))
                else:
                    findings.append(
                        Finding(self.code, self.name, catalog_rel, 1, 0, message)
                    )
        return findings


def _labels_match(site: MetricSite, entry: CatalogEntry) -> bool:
    labels = site.labels or ()
    if site.has_star:
        # ("relation", *extra): the optional shard-suffix idiom.
        return entry.shard_suffix and labels == entry.labels
    if labels == entry.labels:
        return True
    return entry.shard_suffix and labels == entry.labels + ("shard",)


def _expected_labels_text(entry: CatalogEntry) -> str:
    body = ", ".join(entry.labels)
    if entry.shard_suffix:
        return f"({body}[, shard])"
    return f"({body})"
