"""REP011: no blocking calls inside ``async def`` bodies.

The serve daemon multiplexes every client on one event loop; a single
``time.sleep``, synchronous socket/file read, or ``subprocess`` call in
an ``async def`` body stalls *all* sessions for its duration — the
latency SLO dies quietly, with nothing crashing.  This rule walks every
coroutine in the configured paths and flags:

* calls whose resolved dotted name is a known blocking primitive
  (``time.sleep``, the ``subprocess`` family, ``socket.create_connection``,
  ``urllib.request.urlopen``, ``os.system``) — use ``await
  asyncio.sleep`` / ``run_in_executor`` / an async client instead;
* the builtin ``open()`` and the ``Path`` IO quartet
  (``read_text``/``write_text``/``read_bytes``/``write_bytes``);
* ``.shutdown(...)`` on an attribute initialized as a
  ``ThreadPoolExecutor`` unless called with ``wait=False`` — the default
  waits for queue drain while the loop can do nothing else;
* calls into *project* sync functions whose bodies directly contain one
  of the blocking primitives (one level deep through the
  :class:`~repro.analysis.graph.ProjectGraph`), with the blocking site
  attached as a related location.

Nested sync ``def``/``lambda`` bodies inside a coroutine are skipped:
they run wherever they are dispatched (usually an executor), not on the
loop.
"""

from __future__ import annotations

import ast
from typing import Any, Mapping

from ..core import Finding, RelatedLocation, SourceTree
from ..graph import FunctionInfo, ProjectGraph, constructor_call, walk_own
from .base import Rule, attr_chain, call_name, path_in

__all__ = ["AsyncSafetyRule"]

_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "os.system",
}
_PATH_IO = {"read_text", "write_text", "read_bytes", "write_bytes"}


class AsyncSafetyRule(Rule):
    code = "REP011"
    name = "async-safety"
    description = (
        "async def bodies must not call blocking primitives (time.sleep, "
        "sync IO, subprocess, waiting pool shutdown); the event loop "
        "serves every client"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        paths = tuple(str(p) for p in options.get("paths", ()))
        blocking = _BLOCKING_CALLS | {
            str(name) for name in options.get("extra-blocking", ())
        }
        graph = ProjectGraph.for_tree(tree)
        findings: list[Finding] = []
        for fn in graph.functions.values():
            if not fn.is_async or not path_in(fn.source.rel_path, paths):
                continue
            for node in walk_own(fn.node, include_nested=False):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._check_call(graph, fn, node, blocking)
                if finding is not None:
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings

    def _check_call(
        self,
        graph: ProjectGraph,
        fn: FunctionInfo,
        node: ast.Call,
        blocking: set[str],
    ) -> Finding | None:
        resolved = graph.resolve_call(fn, node) or call_name(node)
        if resolved in blocking:
            return self.finding(
                fn.source,
                node,
                f"blocking call {resolved}() inside async def {fn.name}; "
                "use the asyncio equivalent or run_in_executor",
            )
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            if graph.resolve(fn.module, "open") is None:  # the builtin
                return self.finding(
                    fn.source,
                    node,
                    f"blocking file open() inside async def {fn.name}; "
                    "do the IO in an executor",
                )
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _PATH_IO:
                return self.finding(
                    fn.source,
                    node,
                    f"blocking .{node.func.attr}() inside async def "
                    f"{fn.name}; do the IO in an executor",
                )
            if node.func.attr == "shutdown" and self._waits_on_pool(graph, fn, node):
                return self.finding(
                    fn.source,
                    node,
                    f"pool .shutdown() waits for queue drain inside async "
                    f"def {fn.name}; call it via run_in_executor or pass "
                    "wait=False",
                )
        # One level into project sync helpers: an async handler calling a
        # sync wrapper around time.sleep is just as stalled.
        callee = graph.function(resolved) if resolved else None
        if callee is not None and not callee.is_async:
            site = self._direct_blocking_site(graph, callee, blocking)
            if site is not None:
                return self.finding(
                    fn.source,
                    node,
                    f"async def {fn.name} calls {callee.name}(), which blocks "
                    f"({site[1]}); await an async variant or dispatch it to "
                    "an executor",
                    related=(
                        RelatedLocation(
                            callee.source.rel_path,
                            int(getattr(site[0], "lineno", 1)),
                            f"blocking {site[1]} call inside {callee.qualname}",
                        ),
                    ),
                )
        return None

    def _waits_on_pool(
        self, graph: ProjectGraph, fn: FunctionInfo, node: ast.Call
    ) -> bool:
        assert isinstance(node.func, ast.Attribute)
        receiver = attr_chain(node.func.value)
        if not receiver.startswith("self.") or receiver.count(".") != 1 or fn.cls is None:
            return False
        attr = receiver.split(".", 1)[1]
        for owner in graph.mro(fn.cls):
            value = owner.attr_values.get(attr)
            if value is None:
                continue
            call = constructor_call(value)
            if call is None:
                return False
            name = call_name(call)
            if name.rsplit(".", 1)[-1] != "ThreadPoolExecutor":
                return False
            for keyword in node.keywords:
                if keyword.arg == "wait":
                    return not (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is False
                    )
            return True  # shutdown() defaults to wait=True
        return False

    @staticmethod
    def _direct_blocking_site(
        graph: ProjectGraph, callee: FunctionInfo, blocking: set[str]
    ) -> tuple[ast.Call, str] | None:
        for node in walk_own(callee.node, include_nested=False):
            if not isinstance(node, ast.Call):
                continue
            resolved = graph.resolve_call(callee, node) or call_name(node)
            if resolved in blocking:
                return node, resolved
        return None
