"""REP003: code must stay safe to run under the sharded process backend.

:class:`repro.sharding.executor.ShardExecutor` can dispatch shard work to
worker *processes*.  Three things break that silently rather than loudly:

* callables sent across the process boundary that are not importable
  top-level functions (lambdas, nested closures) — pickle fails at
  dispatch time, or worse, only on the one backend nobody tests;
* module-level mutable state — each worker process gets its own copy, so
  "shared" accumulators fork into per-shard ghosts;
* unseeded randomness or wall-clock reads inside the estimator library —
  shard answers stop being reproducible, which the answer-parity harness
  (tier-1) can only catch per-seed.

The randomness/wall-clock check is scoped to the deterministic library
paths from configuration (``deterministic-paths``); telemetry code like
:mod:`repro.obs.exporters` legitimately timestamps output and lives
outside that scope.  Mutable *default arguments* are flagged everywhere —
they are latent shared state regardless of backend.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Mapping

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, call_name, path_in

__all__ = ["ShardSafetyRule"]

#: random-module calls that produce seeded/explicit generators (allowed).
_SEEDED_FACTORIES = {
    "random.Random",
    "random.SystemRandom",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.Generator",
    "numpy.random.Generator",
    "np.random.SeedSequence",
    "numpy.random.SeedSequence",
}
_WALL_CLOCK = {"time.time", "time.time_ns", "datetime.now", "datetime.datetime.now"}
_DISPATCH_METHODS = {"submit", "apply_async", "map_async"}
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "collections.defaultdict"}


class ShardSafetyRule(Rule):
    code = "REP003"
    name = "shard-safety"
    description = (
        "no lambdas/closures across the process-dispatch boundary, no "
        "module-level mutable state, and no unseeded randomness or "
        "wall-clock reads inside the deterministic estimator paths"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        deterministic = tuple(
            str(p) for p in options.get("deterministic-paths", ())
        )
        findings: list[Finding] = []
        for source in tree:
            findings.extend(self._module_mutables(source))
            findings.extend(self._mutable_defaults(source))
            findings.extend(self._dispatch_lambdas(source))
            if path_in(source.rel_path, deterministic):
                findings.extend(self._nondeterminism(source))
        return findings

    def _module_mutables(self, source: SourceFile) -> Iterator[Finding]:
        for stmt in source.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if not _is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.isupper() or name.startswith("__"):
                    continue  # constants by convention; dunders (__all__)
                yield self.finding(
                    source,
                    stmt,
                    f"module-level mutable {name!r}: process-backend workers "
                    "each get their own copy, so this is not shared state; "
                    "make it a function argument or an UPPER_CASE constant",
                )

    def _mutable_defaults(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in (*args.defaults, *args.kw_defaults):
                if default is not None and _is_mutable_literal(default):
                    yield self.finding(
                        source,
                        default,
                        f"mutable default argument in {node.name}(): shared "
                        "across calls and across shards on the serial "
                        "backend; default to None and build inside",
                    )

    def _dispatch_lambdas(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            candidates: list[ast.AST] = []
            if name.split(".")[-1] in _DISPATCH_METHODS and node.args:
                candidates.append(node.args[0])
            if name.endswith("Process"):
                candidates.extend(
                    kw.value for kw in node.keywords if kw.arg == "target"
                )
            for candidate in candidates:
                if isinstance(candidate, ast.Lambda):
                    yield self.finding(
                        source,
                        candidate,
                        "lambda crosses the process-dispatch boundary; "
                        "pickle requires an importable top-level function",
                    )

    def _nondeterminism(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not name:
                continue
            if name in _WALL_CLOCK:
                yield self.finding(
                    source,
                    node,
                    f"{name}() in a deterministic estimator path: shard "
                    "answers must not depend on wall-clock time; thread a "
                    "clock in explicitly or move this out of the library",
                )
                continue
            if _is_unseeded_random(name):
                yield self.finding(
                    source,
                    node,
                    f"{name}() uses the unseeded global RNG: shard answers "
                    "become irreproducible; accept a random.Random(seed) or "
                    "numpy Generator instead",
                )


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _MUTABLE_CALLS
    return False


def _is_unseeded_random(name: str) -> bool:
    if name in _SEEDED_FACTORIES:
        return False
    head = name.split(".")[0]
    if head == "random" and name.count(".") == 1:
        # random.random(), random.randint(...), random.shuffle(...): the
        # process-global, implicitly seeded generator.
        return True
    return name.startswith(("np.random.", "numpy.random.")) and name not in _SEEDED_FACTORIES
