"""REP008: lock discipline on every concurrent call path.

The engines in this repository share mutable objects across threads in
three ways: ``threading.Thread`` daemons (supervisor heartbeats, the
metrics server, the OTel push loop), pool submissions
(``ThreadPoolExecutor.submit`` / ``loop.run_in_executor``), and the
telemetry hot paths (``Tracer`` / ``MetricsRegistry``) that every engine
thread calls.  Any ``self.<attr>`` store reachable from one of those
entry points must happen while a ``threading.Lock`` is held, or the
attribute must itself be a lock or a ``threading.local``.

The rule computes the transitive call closure from every discovered
concurrent entry point over the :class:`~repro.analysis.graph.ProjectGraph`,
propagating a *guarded* bit:

* ``with self._lock:`` (including a per-shard alias ``lock =
  self._locks[shard]``) guards the statements it encloses;
* a function that calls ``.acquire()`` on a known lock is treated as
  guarded throughout (the try/finally heartbeat idiom is not lexically
  nested);
* a function named ``*_locked`` asserts its callers hold a lock; calling
  one from an unguarded concurrent context is itself a violation;
* submissions to a single-lane pool (``ThreadPoolExecutor(max_workers=1)``)
  are serialized with each other, not concurrent, and are skipped — the
  shard executors and the serve daemon's apply lane rely on this
  confinement instead of locks.

Unresolvable callables produce no closure edge, so the rule
under-approximates: it misses dynamic dispatch but never floods on it.

Lock-order inversions are checked separately: lexical (and propagated)
``with``-lock nestings build a global acquired-before relation keyed by
``Class.attr``; a 2-cycle between the configured multi-lock modules is
reported with both acquisition sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core import Finding, RelatedLocation, SourceTree
from ..graph import (
    ClassInfo,
    FunctionInfo,
    ProjectGraph,
    constructor_call,
    walk_own,
)
from .base import Rule, attr_chain, call_name, path_in

__all__ = ["ConcurrencyDisciplineRule"]

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}
_THREAD_LOCAL_FACTORIES = {"threading.local"}
_POOL_FACTORIES = {
    "concurrent.futures.ThreadPoolExecutor",
    "ThreadPoolExecutor",
}


@dataclass(frozen=True)
class _Root:
    """One concurrent entry point: the function plus the spawning site."""

    fn: FunctionInfo
    site_path: str
    site_line: int
    why: str


@dataclass
class _Facts:
    """Per-function lexical lock facts, computed once and cached."""

    #: (store node, attribute name, lock keys held lexically at the store).
    mutations: list[tuple[ast.AST, str, tuple[str, ...]]] = field(default_factory=list)
    #: (call node, resolved target qualname, lock keys held at the call).
    calls: list[tuple[ast.Call, str, tuple[str, ...]]] = field(default_factory=list)
    #: (lock key, acquisition node, keys already held when acquiring).
    acquisitions: list[tuple[str, ast.AST, tuple[str, ...]]] = field(default_factory=list)
    #: ``.acquire()`` seen on a known lock: treat the whole body as guarded.
    coarse_guard: bool = False


class ConcurrencyDisciplineRule(Rule):
    code = "REP008"
    name = "concurrency-discipline"
    description = (
        "Class attributes mutated on thread/executor/hot-path call chains "
        "must be lock-guarded or thread-local; lock orders must not invert"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        graph = ProjectGraph.for_tree(tree)
        extra_roots = tuple(options.get("thread-roots", ()))
        hot_classes = tuple(options.get("hot-path-classes", ()))
        order_modules = tuple(options.get("lock-order-modules", ()))

        analysis = _Analysis(graph)
        roots = analysis.discover_roots(extra_roots, hot_classes)
        findings = analysis.check_mutations(self, roots)
        findings.extend(analysis.check_lock_order(self, order_modules))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return findings


class _Analysis:
    """Shared machinery: facts cache, root discovery, closures."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self._facts: dict[str, _Facts] = {}
        self._lock_attrs: dict[str, dict[str, bool]] = {}

    # ------------------------------------------------------------------ #
    # lock-typed attributes
    # ------------------------------------------------------------------ #

    def class_lock_attrs(self, cls: ClassInfo) -> dict[str, bool]:
        """attr -> is_thread_local for lock/``threading.local`` attributes."""
        cached = self._lock_attrs.get(cls.qualname)
        if cached is not None:
            return cached
        out: dict[str, bool] = {}
        for owner in self.graph.mro(cls):
            for attr, value in owner.attr_values.items():
                if attr in out:
                    continue
                call = constructor_call(value)
                if call is None:
                    continue
                target = self._resolve_factory(owner, call)
                if target in _LOCK_FACTORIES:
                    out[attr] = False
                elif target in _THREAD_LOCAL_FACTORIES:
                    out[attr] = True
        self._lock_attrs[cls.qualname] = out
        return out

    def _resolve_factory(self, owner: ClassInfo, call: ast.Call) -> str:
        name = call_name(call)
        if not name:
            return ""
        return self.graph.resolve(owner.module, name) or name

    def _pool_is_single_lane(self, fn: FunctionInfo, pool: ast.expr) -> bool | None:
        """``True``: serialized lane; ``False``: concurrent; ``None``: unknown."""
        attr: str | None = None
        target = pool
        if isinstance(target, ast.Subscript):
            target = target.value
        dotted = attr_chain(target)
        if dotted.startswith("self.") and dotted.count(".") == 1 and fn.cls is not None:
            attr = dotted.split(".", 1)[1]
        if attr is None or fn.cls is None:
            return None
        for owner in self.graph.mro(fn.cls):
            value = owner.attr_values.get(attr)
            if value is None:
                continue
            call = constructor_call(value)
            if call is None:
                return None
            factory = self._resolve_factory(owner, call)
            if factory.rsplit(".", 1)[-1] != "ThreadPoolExecutor":
                return None
            for keyword in call.keywords:
                if keyword.arg == "max_workers":
                    if (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value == 1
                    ):
                        return True
                    return False
            return False
        return None

    # ------------------------------------------------------------------ #
    # concurrent entry points
    # ------------------------------------------------------------------ #

    def discover_roots(
        self, extra_roots: tuple[str, ...], hot_classes: tuple[str, ...]
    ) -> list[_Root]:
        roots: dict[str, _Root] = {}

        def add(fn: FunctionInfo | None, site: ast.AST, source_path: str, why: str) -> None:
            if fn is not None and fn.qualname not in roots:
                line = int(getattr(site, "lineno", 1))
                roots[fn.qualname] = _Root(fn, source_path, line, why)

        for fn in self.graph.functions.values():
            for node in walk_own(fn.node, include_nested=False):
                if not isinstance(node, ast.Call):
                    continue
                target = self.graph.resolve_call(fn, node) or call_name(node)
                if target in ("threading.Thread", "Thread"):
                    for keyword in node.keywords:
                        if keyword.arg == "target":
                            add(
                                self._resolve_callable(fn, keyword.value),
                                node,
                                fn.source.rel_path,
                                f"thread started in {fn.qualname}",
                            )
                elif isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
                    if self._pool_is_single_lane(fn, node.func.value) is False and node.args:
                        add(
                            self._resolve_callable(fn, node.args[0]),
                            node,
                            fn.source.rel_path,
                            f"submitted to a multi-worker pool in {fn.qualname}",
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "run_in_executor"
                    and len(node.args) >= 2
                ):
                    pool = node.args[0]
                    if isinstance(pool, ast.Constant) and pool.value is None:
                        lane: bool | None = False  # the default pool is shared
                    else:
                        lane = self._pool_is_single_lane(fn, pool)
                    if lane is False:
                        add(
                            self._resolve_callable(fn, node.args[1]),
                            node,
                            fn.source.rel_path,
                            f"dispatched to an executor in {fn.qualname}",
                        )

        for qualname in extra_roots:
            self._add_configured_root(roots, qualname, "configured thread root")
        for qualname in hot_classes:
            self._add_configured_root(
                roots, qualname, "telemetry hot path (called from every engine thread)"
            )
        return list(roots.values())

    def _add_configured_root(
        self, roots: dict[str, _Root], qualname: str, why: str
    ) -> None:
        cls = self.graph.classes.get(qualname)
        if cls is not None:
            for method in cls.methods.values():
                if method.qualname not in roots:
                    roots[method.qualname] = _Root(
                        method,
                        method.source.rel_path,
                        int(method.node.lineno),
                        f"{why}: {qualname}",
                    )
            return
        fn = self.graph.function(qualname)
        if fn is not None and fn.qualname not in roots:
            roots[fn.qualname] = _Root(
                fn, fn.source.rel_path, int(fn.node.lineno), f"{why}: {qualname}"
            )

    def _resolve_callable(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> FunctionInfo | None:
        """A ``target=``/``submit`` callable expression as a project function."""
        if isinstance(expr, ast.Name):
            scope: FunctionInfo | None = fn
            while scope is not None:
                nested = scope.nested.get(expr.id)
                if nested is not None:
                    return nested
                parent = scope.qualname.rsplit(".", 1)[0]
                scope = self.graph.functions.get(parent)
            resolved = self.graph.resolve(fn.module, expr.id)
            return self.graph.function(resolved) if resolved else None
        dotted = attr_chain(expr)
        if dotted.startswith("self.") and fn.cls is not None:
            parts = dotted.split(".")
            if len(parts) == 2:
                owner = self.graph.method_owner(fn.cls, parts[1])
                if owner is not None:
                    return owner.methods[parts[1]]
            return None
        if dotted:
            resolved = self.graph.resolve(fn.module, dotted)
            return self.graph.function(resolved) if resolved else None
        return None

    # ------------------------------------------------------------------ #
    # per-function lexical facts
    # ------------------------------------------------------------------ #

    def facts(self, fn: FunctionInfo) -> _Facts:
        cached = self._facts.get(fn.qualname)
        if cached is not None:
            return cached
        facts = _Facts()
        lock_attrs = self.class_lock_attrs(fn.cls) if fn.cls is not None else {}
        aliases = self._lock_aliases(fn, lock_attrs)

        def lock_key(expr: ast.expr) -> str | None:
            target = expr
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Name):
                return aliases.get(target.id) or self._module_lock_key(fn, target.id)
            dotted = attr_chain(target)
            if (
                dotted.startswith("self.")
                and dotted.count(".") == 1
                and fn.cls is not None
            ):
                attr = dotted.split(".", 1)[1]
                if attr in lock_attrs and not lock_attrs[attr]:
                    return f"{fn.cls.qualname}.{attr}"
            return None

        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = list(held)
                for item in node.items:
                    key = lock_key(item.context_expr)
                    if key is not None:
                        facts.acquisitions.append((key, item.context_expr, tuple(acquired)))
                        acquired.append(key)
                for stmt in node.body:
                    visit(stmt, tuple(acquired))
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # analyzed as their own graph nodes
            store_attr = self._self_store_attr(node)
            if store_attr is not None:
                facts.mutations.append((node, store_attr, held))
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and lock_key(node.func.value) is not None
                ):
                    facts.coarse_guard = True
                    key = lock_key(node.func.value)
                    if key is not None:
                        facts.acquisitions.append((key, node, held))
                target = self.graph.resolve_call(fn, node)
                if target is not None:
                    facts.calls.append((node, target, held))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.node.body:
            visit(stmt, ())
        self._facts[fn.qualname] = facts
        return facts

    def _lock_aliases(
        self, fn: FunctionInfo, lock_attrs: Mapping[str, bool]
    ) -> dict[str, str]:
        """Local names bound to a lock attribute (``lock = self._locks[i]``)."""
        aliases: dict[str, str] = {}
        if fn.cls is None:
            return aliases
        for node in walk_own(fn.node, include_nested=False):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Subscript):
                value = value.value
            dotted = attr_chain(value)
            if dotted.startswith("self.") and dotted.count(".") == 1:
                attr = dotted.split(".", 1)[1]
                if attr in lock_attrs and not lock_attrs[attr]:
                    aliases[target.id] = f"{fn.cls.qualname}.{attr}"
        return aliases

    def _module_lock_key(self, fn: FunctionInfo, name: str) -> str | None:
        module = self.graph.modules.get(fn.module)
        if module is None:
            return None
        stmt = module.symbols.get(name)
        if isinstance(stmt, ast.Assign):
            call = constructor_call(stmt.value)
            if call is not None:
                target = self.graph.resolve(fn.module, call_name(call)) or call_name(call)
                if target in _LOCK_FACTORIES:
                    return f"{fn.module}.{name}"
        return None

    @staticmethod
    def _self_store_attr(node: ast.AST) -> str | None:
        """The attribute a ``self.x = / self.x op= / self.x[k] =`` store hits."""
        target: ast.AST | None = None
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            target = node
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            target = node.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    # ------------------------------------------------------------------ #
    # mutation closure
    # ------------------------------------------------------------------ #

    def check_mutations(self, rule: Rule, roots: list[_Root]) -> list[Finding]:
        findings: list[Finding] = []
        reported: set[tuple[str, int, str]] = set()
        seen: set[tuple[str, bool]] = set()
        queue: list[tuple[FunctionInfo, bool, _Root]] = [
            (root.fn, False, root) for root in roots
        ]
        while queue:
            fn, guarded, root = queue.pop()
            state = (fn.qualname, guarded)
            if state in seen:
                continue
            seen.add(state)
            facts = self.facts(fn)
            effective = guarded or facts.coarse_guard or fn.name.endswith("_locked")
            lock_attrs = self.class_lock_attrs(fn.cls) if fn.cls is not None else {}
            # Constructor-protocol methods run on objects no other thread
            # can see yet; their stores are confinement, not sharing.
            if fn.name not in ("__init__", "__new__", "__setstate__"):
                for node, attr, held in facts.mutations:
                    if effective or held or attr in lock_attrs:
                        continue
                    key = (fn.source.rel_path, int(getattr(node, "lineno", 1)), attr)
                    if key in reported or fn.cls is None:
                        continue
                    reported.add(key)
                    findings.append(
                        rule.finding(
                            fn.source,
                            node,
                            f"'{fn.cls.name}.{attr}' is mutated in "
                            f"{fn.name}() on a concurrent call path without a "
                            "held lock; guard it with a threading.Lock or make "
                            "it a threading.local",
                            related=(
                                RelatedLocation(
                                    root.site_path, root.site_line, root.why
                                ),
                            ),
                        )
                    )
            for call, target, held in facts.calls:
                callee = self.graph.function(target)
                if callee is None:
                    continue
                call_guarded = effective or bool(held)
                if callee.name.endswith("_locked") and not call_guarded:
                    key = (
                        fn.source.rel_path,
                        int(call.lineno),
                        f"call:{callee.qualname}",
                    )
                    if key not in reported:
                        reported.add(key)
                        findings.append(
                            rule.finding(
                                fn.source,
                                call,
                                f"{callee.name}() requires its caller to hold "
                                "the lock (the *_locked convention) but is "
                                "called here on an unguarded concurrent path",
                                related=(
                                    RelatedLocation(
                                        callee.source.rel_path,
                                        int(callee.node.lineno),
                                        f"definition of {callee.qualname}",
                                    ),
                                ),
                            )
                        )
                queue.append((callee, call_guarded, root))
        return findings

    # ------------------------------------------------------------------ #
    # lock-order inversions
    # ------------------------------------------------------------------ #

    def check_lock_order(
        self, rule: Rule, order_modules: tuple[str, ...]
    ) -> list[Finding]:
        # acquired-before edges: (held, acquired) -> first site observed.
        edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}
        seen: set[tuple[str, frozenset[str]]] = set()
        queue: list[tuple[FunctionInfo, frozenset[str]]] = [
            (fn, frozenset()) for fn in self.graph.functions.values()
        ]
        while queue and len(seen) < 20000:
            fn, held = queue.pop()
            state = (fn.qualname, held)
            if state in seen:
                continue
            seen.add(state)
            facts = self.facts(fn)
            for key, node, lexical in facts.acquisitions:
                for prior in held | set(lexical):
                    if prior != key:
                        edges.setdefault((prior, key), (fn, node))
            for _, target, lexical in facts.calls:
                callee = self.graph.function(target)
                if callee is not None:
                    queue.append((callee, held | set(lexical)))

        findings: list[Finding] = []
        reported_pairs: set[frozenset[str]] = set()
        for (first, second), (fn, node) in sorted(
            edges.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            opposite = edges.get((second, first))
            if opposite is None:
                continue
            pair = frozenset((first, second))
            if pair in reported_pairs:
                continue
            in_scope = path_in(fn.source.rel_path, order_modules) or path_in(
                opposite[0].source.rel_path, order_modules
            )
            if not in_scope:
                continue
            reported_pairs.add(pair)
            findings.append(
                rule.finding(
                    fn.source,
                    node,
                    f"lock-order inversion: '{second}' is acquired here while "
                    f"holding '{first}', but the opposite order also exists; "
                    "pick one global order to avoid deadlock",
                    related=(
                        RelatedLocation(
                            opposite[0].source.rel_path,
                            int(getattr(opposite[1], "lineno", 1)),
                            f"'{first}' acquired while holding '{second}' "
                            f"in {opposite[0].qualname}",
                        ),
                    ),
                )
            )
        return findings
