"""REP006: keep the per-tuple hot path allocation-free.

``StreamRelation.process()`` and every observer ``on_op`` run once per
tuple of the stream — millions of times per experiment.  The batched
``on_ops`` path exists precisely so per-op work stays cheap, and the
benchmarks in ``benchmarks/`` regress measurably when a copy or an
f-string sneaks into these bodies.  This rule flags allocation-heavy
idioms inside the configured hot functions (``on_op``, ``process``) in
the configured paths:

* ``list(...)`` / ``dict(...)`` / ``set(...)`` / ``tuple(...)`` /
  ``sorted(...)`` / ``copy.deepcopy(...)`` copies,
* list/set/dict comprehensions and displays,
* f-strings and ``str.format`` calls.

The rule also guards the *kernel seam*: batch coefficient maintenance
must build its basis tables through ``repro.fastpath`` (the Chebyshev
recurrence / compiled kernels), not by per-entry trig evaluation.  Files
under the configured ``kernel-paths`` may not call the configured
``kernel-calls`` (``basis_matrix``, ``np.cos``, ...) directly — the
blessed implementations live under ``kernel-seam`` (``src/repro/fastpath``
by default), which is exempt because it *is* the seam, as are the
reference modules the seam is checked against.

Error paths are exempt: anything inside a ``raise`` statement (f-string
exception messages are fine — they only allocate when things already
went wrong).  A justified allocation takes an inline
``# repro: noqa[REP006]``.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Mapping

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, call_name, path_in

__all__ = ["HotPathPurityRule"]

_COPY_CALLS = {
    "list",
    "dict",
    "set",
    "tuple",
    "sorted",
    "deepcopy",
    "copy.copy",
    "copy.deepcopy",
}

#: Default calls that reintroduce per-entry basis evaluation outside the
#: fastpath seam (overridable via the ``kernel-calls`` option).
_KERNEL_CALLS = ("basis_matrix", "np.cos", "numpy.cos", "phi")

#: Default home of the blessed kernel implementations, exempt from the
#: seam check (overridable via the ``kernel-seam`` option).
_KERNEL_SEAM = ("src/repro/fastpath",)


class HotPathPurityRule(Rule):
    code = "REP006"
    name = "hot-path"
    description = (
        "no allocation-heavy idioms (copies, comprehensions, f-strings) "
        "inside per-tuple process()/on_op bodies outside error paths, and "
        "no per-entry basis evaluation outside the repro.fastpath seam"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        functions = tuple(
            str(f) for f in options.get("functions", ("on_op", "process", "_process_inner"))
        )
        paths = tuple(str(p) for p in options.get("paths", ()))
        kernel_paths = tuple(str(p) for p in options.get("kernel-paths", ()))
        kernel_calls = {str(c) for c in options.get("kernel-calls", _KERNEL_CALLS)}
        kernel_seam = tuple(str(p) for p in options.get("kernel-seam", _KERNEL_SEAM))
        findings: list[Finding] = []
        for source in tree:
            if path_in(source.rel_path, paths):
                for node in ast.walk(source.tree):
                    if isinstance(node, ast.FunctionDef) and node.name in functions:
                        findings.extend(self._check_function(source, node))
            if path_in(source.rel_path, kernel_paths) and not path_in(
                source.rel_path, kernel_seam
            ):
                findings.extend(self._check_kernel_seam(source, kernel_calls))
        return findings

    def _check_kernel_seam(
        self, source: SourceFile, kernel_calls: set[str]
    ) -> Iterator[Finding]:
        """Flag direct basis evaluation that bypasses ``repro.fastpath``."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in kernel_calls:
                yield self.finding(
                    source,
                    node,
                    f"direct basis evaluation {name}(...) bypasses the "
                    "repro.fastpath seam; build basis tables with "
                    "repro.fastpath.phi_block so the recurrence/compiled "
                    "kernels stay the only implementation",
                )

    def _check_function(
        self, source: SourceFile, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        label = f"per-tuple {func.name}()"
        for stmt in func.body:
            yield from self._visit(source, stmt, label)

    def _visit(self, source: SourceFile, node: ast.AST, label: str) -> Iterator[Finding]:
        if isinstance(node, ast.Raise):
            return  # error path: allocation only happens when already failing
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are not executed per tuple
        message: str | None = None
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in _COPY_CALLS:
                message = f"{name}(...) copies per tuple in {label}"
            elif name.endswith(".format"):
                message = f"str.format allocates per tuple in {label}"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            message = f"comprehension allocates per tuple in {label}"
        elif isinstance(node, ast.JoinedStr):
            message = f"f-string allocates per tuple in {label}"
        if message is not None:
            yield self.finding(
                source,
                node,
                message
                + "; hoist it out of the hot path, use the batched on_ops "
                "path, or justify with # repro: noqa[REP006]",
            )
            return  # do not double-report sub-expressions of a flagged node
        for child in ast.iter_child_nodes(node):
            yield from self._visit(source, child, label)
