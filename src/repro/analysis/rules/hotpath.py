"""REP006: keep the per-tuple hot path allocation-free.

``StreamRelation.process()`` and every observer ``on_op`` run once per
tuple of the stream — millions of times per experiment.  The batched
``on_ops`` path exists precisely so per-op work stays cheap, and the
benchmarks in ``benchmarks/`` regress measurably when a copy or an
f-string sneaks into these bodies.  This rule flags allocation-heavy
idioms inside the configured hot functions (``on_op``, ``process``) in
the configured paths:

* ``list(...)`` / ``dict(...)`` / ``set(...)`` / ``tuple(...)`` /
  ``sorted(...)`` / ``copy.deepcopy(...)`` copies,
* list/set/dict comprehensions and displays,
* f-strings and ``str.format`` calls.

Error paths are exempt: anything inside a ``raise`` statement (f-string
exception messages are fine — they only allocate when things already
went wrong).  A justified allocation takes an inline
``# repro: noqa[REP006]``.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Mapping

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, call_name, path_in

__all__ = ["HotPathPurityRule"]

_COPY_CALLS = {
    "list",
    "dict",
    "set",
    "tuple",
    "sorted",
    "deepcopy",
    "copy.copy",
    "copy.deepcopy",
}


class HotPathPurityRule(Rule):
    code = "REP006"
    name = "hot-path"
    description = (
        "no allocation-heavy idioms (copies, comprehensions, f-strings) "
        "inside per-tuple process()/on_op bodies outside error paths"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        functions = tuple(str(f) for f in options.get("functions", ("on_op", "process")))
        paths = tuple(str(p) for p in options.get("paths", ()))
        findings: list[Finding] = []
        for source in tree:
            if not path_in(source.rel_path, paths):
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.FunctionDef) and node.name in functions:
                    findings.extend(self._check_function(source, node))
        return findings

    def _check_function(
        self, source: SourceFile, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        label = f"per-tuple {func.name}()"
        for stmt in func.body:
            yield from self._visit(source, stmt, label)

    def _visit(self, source: SourceFile, node: ast.AST, label: str) -> Iterator[Finding]:
        if isinstance(node, ast.Raise):
            return  # error path: allocation only happens when already failing
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are not executed per tuple
        message: str | None = None
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in _COPY_CALLS:
                message = f"{name}(...) copies per tuple in {label}"
            elif name.endswith(".format"):
                message = f"str.format allocates per tuple in {label}"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            message = f"comprehension allocates per tuple in {label}"
        elif isinstance(node, ast.JoinedStr):
            message = f"f-string allocates per tuple in {label}"
        if message is not None:
            yield self.finding(
                source,
                node,
                message
                + "; hoist it out of the hot path, use the batched on_ops "
                "path, or justify with # repro: noqa[REP006]",
            )
            return  # do not double-report sub-expressions of a flagged node
        for child in ast.iter_child_nodes(node):
            yield from self._visit(source, child, label)
