"""Rule base class and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Any, ClassVar, Iterator, Mapping

from ..core import Finding, RelatedLocation, SourceFile, SourceTree

__all__ = [
    "Rule",
    "attr_chain",
    "call_name",
    "iter_classes",
    "iter_methods",
    "is_self_attribute",
    "path_in",
    "self_attribute_stores",
    "string_tuple",
]


class Rule:
    """One checkable invariant: a code, a name, and a tree-wide check."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        raise NotImplementedError

    def options(self, config: Mapping[str, Any]) -> Mapping[str, Any]:
        """This rule's option table from the merged configuration."""
        section = config.get(self.name, {})
        return section if isinstance(section, Mapping) else {}

    def finding(
        self,
        source: SourceFile,
        node: ast.AST,
        message: str,
        related: tuple[RelatedLocation, ...] = (),
    ) -> Finding:
        return source.finding(self.code, self.name, node, message, related)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.code})"


def iter_classes(source: SourceFile) -> Iterator[ast.ClassDef]:
    """Every class definition in a file (any nesting depth)."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """Direct (non-nested) methods of a class, async ones excluded."""
    for node in cls.body:
        if isinstance(node, ast.FunctionDef):
            yield node


def attr_chain(node: ast.AST) -> str:
    """Dotted name of an attribute chain (``np.random.default_rng``), or ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    """Dotted name of a call target, or ``""`` when not a plain name chain."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return attr_chain(node.func)


def is_self_attribute(node: ast.AST) -> bool:
    """Whether ``node`` is a ``self.<attr>`` access."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def self_attribute_stores(func: ast.FunctionDef) -> Iterator[ast.Attribute]:
    """``self.<attr>`` targets assigned anywhere in a function body."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Store)
            and is_self_attribute(node)
        ):
            yield node


def path_in(rel_path: str, prefixes: "tuple[str, ...]") -> bool:
    """Whether ``rel_path`` falls under any prefix (empty prefixes = everywhere)."""
    if not prefixes:
        return True
    return any(
        rel_path == prefix or rel_path.startswith(prefix.rstrip("/") + "/")
        for prefix in prefixes
    )


def string_tuple(node: ast.AST) -> tuple[tuple[str, ...], bool] | None:
    """Resolve a literal label tuple/list to its strings.

    Returns ``(labels, has_star)`` where ``has_star`` records a trailing
    ``*rest`` element (the optional-shard-suffix idiom), or ``None`` when
    the expression is not statically resolvable.
    """
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    labels: list[str] = []
    has_star = False
    for element in node.elts:
        if isinstance(element, ast.Starred):
            has_star = True
            continue
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            labels.append(element.value)
        else:
            return None
    return tuple(labels), has_star
