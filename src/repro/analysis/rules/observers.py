"""REP005: StreamObserver subclasses must honour the observer protocol.

:class:`repro.streams.relation.StreamObserver` is the seam every
estimator hangs off: ``on_op`` is the mandatory per-operation hook (the
base raises ``NotImplementedError``), ``on_ops`` is the optional batched
fast path whose base implementation replays per-op, and
``answer()`` / ``estimate()`` / ``state_dict()`` are read paths the
engine may call at any point between batches — including concurrently
with checkpointing.  Two drift modes this rule pins down statically:

* a subclass that defines ``on_ops`` but not ``on_op`` — the batched
  path works until something (fault isolation, the dead-letter replayer)
  falls back to per-op delivery and hits the base's
  ``NotImplementedError``;
* mutation inside the read-only methods — an ``answer()`` that updates
  ``self`` state turns checkpoint/restore and shard-merge into
  order-dependent heisenbugs.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Mapping, Sequence

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, is_self_attribute, iter_classes, iter_methods

__all__ = ["ObserverProtocolRule"]


class ObserverProtocolRule(Rule):
    code = "REP005"
    name = "observer-protocol"
    description = (
        "StreamObserver subclasses must implement on_op when they define "
        "on_ops, and must not mutate self inside answer()/estimate()/"
        "state_dict()"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        bases = tuple(str(b) for b in options.get("base-classes", ("StreamObserver",)))
        read_only = tuple(
            str(m)
            for m in options.get("read-only-methods", ("answer", "estimate", "state_dict"))
        )
        findings: list[Finding] = []
        for source in tree:
            for cls in iter_classes(source):
                if not _subclasses(cls, bases):
                    continue
                findings.extend(self._check_class(source, cls, read_only))
        return findings

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, read_only: Sequence[str]
    ) -> Iterator[Finding]:
        methods = {m.name: m for m in iter_methods(cls)}
        if "on_ops" in methods and "on_op" not in methods:
            yield self.finding(
                source,
                methods["on_ops"],
                f"{cls.name} defines the batched on_ops fast path but not "
                "on_op; per-op fallback (fault isolation, dead-letter "
                "replay) would hit StreamObserver.on_op's "
                "NotImplementedError",
            )
        for name in read_only:
            method = methods.get(name)
            if method is None:
                continue
            for site in _mutations(method):
                yield self.finding(
                    source,
                    site,
                    f"{cls.name}.{name}() mutates self; read paths must be "
                    "pure so checkpointing and shard-merge stay "
                    "order-independent",
                )


def _subclasses(cls: ast.ClassDef, bases: Sequence[str]) -> bool:
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name in bases:
            return True
    return False


def _mutations(method: ast.FunctionDef) -> Iterator[ast.AST]:
    """Statements that store into ``self`` state inside ``method``."""
    # AugAssign targets carry Store ctx, so `self.x += 1` and
    # `self.buckets[i] += 1` are covered by the two branches below.
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute):
            if isinstance(node.ctx, (ast.Store, ast.Del)) and is_self_attribute(node):
                yield node
        elif isinstance(node, ast.Subscript):
            # self.buckets[i] = ... / del self.buckets[i]
            if isinstance(node.ctx, (ast.Store, ast.Del)) and is_self_attribute(node.value):
                yield node
