"""REP009: every metric-name literal anywhere must exist in the catalog.

REP001 checks *registration* sites (``.counter("repro_...")``) against
the generated catalog.  But metric names also appear far from their
registration: dashboards fetch them by name, tests assert on them,
exporters and docs embed them.  A renamed metric leaves those references
silently pointing at nothing — queries return empty series instead of
failing.  This rule closes the loop: any string literal in the tree that
*is* a full metric name (matches ``<prefix>[a-z0-9_]+``) must be a
catalog entry.  The reverse direction — catalog entries with no
registration site — is REP001's stale-entry check, so the two rules
together enforce exact bidirectional agreement.

Registration sites themselves are skipped here (REP001 reports them with
richer kind/label diagnostics), as is the generated catalog module.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Mapping

from ..core import Finding, SourceTree
from .base import Rule
from .metrics import load_catalog, scan_metric_sites

__all__ = ["MetricDriftRule"]


class MetricDriftRule(Rule):
    code = "REP009"
    name = "metric-drift"
    description = (
        "string literals naming repro_* metrics must refer to catalogued "
        "metrics, wherever in the tree they appear"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        prefix = str(options.get("prefix", "repro_"))
        catalog_rel = str(options.get("catalog", "src/repro/obs/catalog.py"))
        allow = {str(name) for name in options.get("allow", ())}
        catalog = load_catalog(tree.root / catalog_rel) or {}
        name_re = re.compile(re.escape(prefix) + r"[a-z0-9]+(?:_[a-z0-9]+)*\Z")

        # Registration call sites are REP001's jurisdiction: remember the
        # exact string nodes so the same literal is not double-reported.
        registration_nodes = {
            id(site.node.args[0]) for site in scan_metric_sites(tree, prefix)
        }

        findings: list[Finding] = []
        for source in tree:
            if source.rel_path == catalog_rel:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
                    continue
                if id(node) in registration_nodes:
                    continue
                if not name_re.fullmatch(node.value):
                    continue
                if node.value in catalog or node.value in allow:
                    continue
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"string {node.value!r} looks like a metric name but "
                        f"is not in the catalog {catalog_rel}; fix the "
                        "reference, register the metric, or allow-list it "
                        "under [tool.repro-analysis.metric-drift]",
                    )
                )
        return findings
