"""REP004: numeric hygiene for an estimator codebase.

The estimators' correctness claims are statistical, so the code that
computes them must not hide numeric footguns:

* ``==`` / ``!=`` against float-valued expressions — float equality is a
  rounding accident, and the idioms this repository actually grew
  (``value == int(value)``, ``value == math.inf``) have exact stdlib
  replacements (``float.is_integer()``, ``math.isinf``).  The check is
  heuristic-by-construction: it fires only when one side is statically
  float-ish (a float literal, ``math.inf``/``nan``, a ``float(...)`` or
  ``int(...)`` cast, a division, or a ``math.*`` call), so ordinary
  integer and string comparisons never trip it.  Deliberate sentinel
  comparisons carry an inline ``# repro: noqa[REP004]`` with a reason.
* bare ``except:`` — swallows ``KeyboardInterrupt``/``SystemExit`` in
  long-running ingest loops; catch ``Exception`` (or ``BaseException``
  with a re-raise) instead.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Mapping

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, attr_chain, call_name

__all__ = ["NumericHygieneRule"]

_FLOAT_CONSTANTS = {
    "math.inf",
    "math.nan",
    "math.pi",
    "math.e",
    "math.tau",
    "np.inf",
    "np.nan",
    "numpy.inf",
    "numpy.nan",
}
_CAST_CALLS = {"float", "int", "round", "abs"}


class NumericHygieneRule(Rule):
    code = "REP004"
    name = "numeric-hygiene"
    description = (
        "no ==/!= against float-valued expressions (use math.isclose/"
        "isinf/is_integer) and no bare except clauses"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree:
            findings.extend(self._float_equality(source))
            findings.extend(self._bare_except(source))
        return findings

    def _float_equality(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                floaty = next(
                    (o for o in (left, right) if _is_floatish(o)), None
                )
                if floaty is None:
                    continue
                yield self.finding(
                    source,
                    node,
                    f"float equality: {ast.unparse(left)} "
                    f"{'==' if isinstance(op, ast.Eq) else '!='} "
                    f"{ast.unparse(right)}; use math.isclose/math.isinf/"
                    "float.is_integer, or justify with # repro: noqa[REP004]",
                )
                break  # one finding per comparison chain

    def _bare_except(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    source,
                    node,
                    "bare except swallows KeyboardInterrupt/SystemExit in "
                    "ingest loops; catch Exception instead",
                )


def _is_floatish(node: ast.AST) -> bool:
    """Statically float-valued with high confidence."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Attribute):
        return attr_chain(node) in _FLOAT_CONSTANTS
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _CAST_CALLS:
            # value == int(value): the is-it-a-whole-number idiom.
            return bool(node.args) and not isinstance(node.args[0], ast.Constant)
        return name.startswith("math.") and name not in {
            "math.floor",
            "math.ceil",
            "math.trunc",
            "math.isqrt",
            "math.comb",
            "math.perm",
            "math.gcd",
            "math.lcm",
        }
    return False
