"""The rule catalog: one class per repository invariant.

Every rule subclasses :class:`Rule` and implements
``check(tree, config) -> list[Finding]`` over the whole
:class:`~repro.analysis.core.SourceTree`, so rules that need cross-file
state (the metric catalog, the checkpoint-state manifest) see everything
at once while per-file rules simply loop.  ``ALL_RULES`` is the
registry the runner and ``--list-rules`` consume; codes are stable
public API (they appear in ``# repro: noqa[...]`` comments and
baselines), so new rules append codes rather than renumbering.
"""

from __future__ import annotations

from .base import Rule
from .checkpoints import CheckpointCoverageRule
from .executors import ExecutorProtocolRule
from .hotpath import HotPathPurityRule
from .metrics import MetricCatalogRule
from .numerics import NumericHygieneRule
from .observers import ObserverProtocolRule
from .sharding import ShardSafetyRule

__all__ = [
    "ALL_RULES",
    "CheckpointCoverageRule",
    "ExecutorProtocolRule",
    "HotPathPurityRule",
    "MetricCatalogRule",
    "NumericHygieneRule",
    "ObserverProtocolRule",
    "Rule",
    "ShardSafetyRule",
]

#: Registry order is report order for equal locations; codes must be unique.
ALL_RULES: tuple[Rule, ...] = (
    MetricCatalogRule(),
    CheckpointCoverageRule(),
    ShardSafetyRule(),
    NumericHygieneRule(),
    ObserverProtocolRule(),
    HotPathPurityRule(),
    ExecutorProtocolRule(),
)
