"""The rule catalog: one class per repository invariant.

Every rule subclasses :class:`Rule` and implements
``check(tree, config) -> list[Finding]`` over the whole
:class:`~repro.analysis.core.SourceTree`, so rules that need cross-file
state (the metric catalog, the checkpoint-state manifest) see everything
at once while per-file rules simply loop.  REP008–REP011 go further and
query the shared :class:`~repro.analysis.graph.ProjectGraph` (import
graph, class hierarchy, call graph) for whole-program invariants.
``ALL_RULES`` is the registry the runner and ``--list-rules`` consume;
codes are stable public API (they appear in ``# repro: noqa[...]``
comments and baselines), so new rules append codes rather than
renumbering.
"""

from __future__ import annotations

from .async_safety import AsyncSafetyRule
from .base import Rule
from .checkpoint_graph import CheckpointGraphRule
from .checkpoints import CheckpointCoverageRule
from .concurrency import ConcurrencyDisciplineRule
from .executors import ExecutorProtocolRule
from .hotpath import HotPathPurityRule
from .metric_drift import MetricDriftRule
from .metrics import MetricCatalogRule
from .numerics import NumericHygieneRule
from .observers import ObserverProtocolRule
from .sharding import ShardSafetyRule

__all__ = [
    "ALL_RULES",
    "AsyncSafetyRule",
    "CheckpointCoverageRule",
    "CheckpointGraphRule",
    "ConcurrencyDisciplineRule",
    "ExecutorProtocolRule",
    "HotPathPurityRule",
    "MetricCatalogRule",
    "MetricDriftRule",
    "NumericHygieneRule",
    "ObserverProtocolRule",
    "Rule",
    "ShardSafetyRule",
]

#: Registry order is report order for equal locations; codes must be unique.
ALL_RULES: tuple[Rule, ...] = (
    MetricCatalogRule(),
    CheckpointCoverageRule(),
    ShardSafetyRule(),
    NumericHygieneRule(),
    ObserverProtocolRule(),
    HotPathPurityRule(),
    ExecutorProtocolRule(),
    ConcurrencyDisciplineRule(),
    MetricDriftRule(),
    CheckpointGraphRule(),
    AsyncSafetyRule(),
)
