"""REP002: checkpointed classes must serialize (or exempt) their whole state.

:mod:`repro.resilience.checkpoint` persists any object exposing the
``state_dict()`` / ``load_state()`` pair.  A field added to ``__init__``
but forgotten in ``state_dict`` silently survives a crash with its
constructor default — estimates drift instead of failing loudly.  This
rule finds every checkpoint-protocol class, diffs its ``__init__``
attribute stores against the attributes ``state_dict`` actually touches,
and requires the difference to be listed in a ``_checkpoint_exempt``
class tuple (the opt-out for structural state rebuilt from the spec).

The serialized *shape* of every class is additionally pinned in a
generated manifest (:mod:`repro.resilience.state_manifest`).  Changing a
class's state shape without regenerating the manifest — and bumping
``FORMAT_VERSION`` in ``checkpoint.py``, which the regenerator enforces —
is a finding, because old checkpoints would be restored into a layout
they were never written for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, is_self_attribute, iter_methods, string_tuple

__all__ = [
    "CheckpointClass",
    "CheckpointCoverageRule",
    "load_format_version",
    "load_manifest",
    "scan_checkpoint_classes",
]

_PROTOCOL_METHODS = {"state_dict", "load_state"}
#: Dunder-adjacent attributes never expected in a checkpoint payload.
_ALWAYS_EXEMPT = {"_lock"}


@dataclass(frozen=True)
class CheckpointClass:
    """A class implementing the checkpoint protocol, pre-digested."""

    source: SourceFile
    node: ast.ClassDef
    name: str
    init_stores: dict[str, ast.Attribute]  # attr -> first store site in __init__
    serialized: frozenset[str]  # self.<attr> reads anywhere in state_dict
    exempt: tuple[str, ...]
    exempt_node: ast.AST | None

    @property
    def key(self) -> str:
        return f"{self.source.rel_path}::{self.name}"

    @property
    def state_shape(self) -> list[str]:
        return sorted(self.serialized)


def scan_checkpoint_classes(tree: SourceTree, exempt_attr: str) -> list[CheckpointClass]:
    classes: list[CheckpointClass] = []
    for source in tree:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {m.name: m for m in iter_methods(node)}
            if not _PROTOCOL_METHODS <= set(methods):
                continue
            init_stores: dict[str, ast.Attribute] = {}
            init = methods.get("__init__")
            if init is not None:
                for store in _attribute_stores(init):
                    init_stores.setdefault(store.attr, store)
            serialized = frozenset(
                attr.attr
                for attr in ast.walk(methods["state_dict"])
                if is_self_attribute(attr)
            )
            exempt, exempt_node = _exempt_tuple(node, exempt_attr)
            classes.append(
                CheckpointClass(
                    source, node, node.name, init_stores, serialized, exempt, exempt_node
                )
            )
    return classes


def load_manifest(path: Path) -> tuple[int | None, dict[str, list[str]]] | None:
    """Parse ``FORMAT_VERSION`` and ``STATE_MANIFEST`` literals from the manifest."""
    if not path.is_file():
        return None
    module = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    version: int | None = None
    entries: dict[str, list[str]] | None = None
    for node in module.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "FORMAT_VERSION":
                value = ast.literal_eval(node.value)
                version = int(value) if isinstance(value, int) else None
            elif target.id == "STATE_MANIFEST":
                raw = ast.literal_eval(node.value)
                entries = {
                    str(key): [str(attr) for attr in attrs]
                    for key, attrs in raw.items()
                }
    if entries is None:
        return None
    return version, entries


def load_format_version(path: Path) -> int | None:
    """Read the integer ``FORMAT_VERSION`` constant out of ``checkpoint.py``."""
    if not path.is_file():
        return None
    module = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(module):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "FORMAT_VERSION":
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    return value.value
    return None


class CheckpointCoverageRule(Rule):
    code = "REP002"
    name = "checkpoint-coverage"
    description = (
        "checkpoint-protocol classes must serialize or explicitly exempt "
        "every __init__ attribute, and state-shape changes must bump the "
        "checkpoint FORMAT_VERSION via the generated manifest"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        exempt_attr = str(options.get("exempt-attribute", "_checkpoint_exempt"))
        manifest_rel = str(options.get("manifest", "src/repro/resilience/state_manifest.py"))
        format_rel = str(options.get("format-source", "src/repro/resilience/checkpoint.py"))
        classes = scan_checkpoint_classes(tree, exempt_attr)
        findings: list[Finding] = []
        hint = "regenerate with `python -m repro.analysis --update-state-manifest`"

        for cls in classes:
            exempt = set(cls.exempt) | _ALWAYS_EXEMPT
            for attr in sorted(set(cls.init_stores) - cls.serialized - exempt):
                findings.append(
                    self.finding(
                        cls.source,
                        cls.init_stores[attr],
                        f"{cls.name}.{attr} is assigned in __init__ but never "
                        "serialized by state_dict; serialize it or list it in "
                        f"{exempt_attr} with a comment saying why it is "
                        "rebuilt structurally",
                    )
                )
            anchor = cls.exempt_node or cls.node
            for attr in sorted(set(cls.exempt) & cls.serialized):
                findings.append(
                    self.finding(
                        cls.source,
                        anchor,
                        f"{cls.name}.{attr} is listed in {exempt_attr} but is "
                        "serialized by state_dict; drop the stale exemption",
                    )
                )
            for attr in sorted(set(cls.exempt) - set(cls.init_stores)):
                findings.append(
                    self.finding(
                        cls.source,
                        anchor,
                        f"{cls.name}.{attr} is listed in {exempt_attr} but is "
                        "never assigned in __init__; drop the stale exemption",
                    )
                )

        findings.extend(
            self._manifest_findings(tree, classes, manifest_rel, format_rel, hint)
        )
        return findings

    def _manifest_findings(
        self,
        tree: SourceTree,
        classes: list[CheckpointClass],
        manifest_rel: str,
        format_rel: str,
        hint: str,
    ) -> Iterator[Finding]:
        loaded = load_manifest(tree.root / manifest_rel)
        if loaded is None:
            if classes:
                cls = classes[0]
                yield self.finding(
                    cls.source,
                    cls.node,
                    f"no state manifest at {manifest_rel}; {hint}",
                )
            return
        manifest_version, manifest = loaded
        current_version = load_format_version(tree.root / format_rel)
        anchor = tree.by_rel_path(manifest_rel)
        if (
            current_version is not None
            and manifest_version is not None
            and current_version != manifest_version
            and anchor is not None
        ):
            yield self.finding(
                anchor,
                anchor.tree,
                f"manifest was generated at checkpoint FORMAT_VERSION "
                f"{manifest_version} but {format_rel} now declares "
                f"{current_version}; {hint}",
            )
        for cls in classes:
            recorded = manifest.get(cls.key)
            if recorded is None:
                yield self.finding(
                    cls.source,
                    cls.node,
                    f"{cls.name} implements the checkpoint protocol but has "
                    f"no entry in {manifest_rel}; {hint}",
                )
            elif recorded != cls.state_shape:
                yield self.finding(
                    cls.source,
                    cls.node,
                    f"{cls.name} state shape changed (manifest records "
                    f"{recorded}, code serializes {cls.state_shape}); bump "
                    f"FORMAT_VERSION in {format_rel} and {hint}",
                )
        live = {cls.key for cls in classes}
        if anchor is not None:
            for key in sorted(set(manifest) - live):
                yield self.finding(
                    anchor,
                    anchor.tree,
                    f"manifest entry {key!r} matches no checkpoint-protocol "
                    f"class; {hint}",
                )


def _attribute_stores(func: ast.FunctionDef) -> Iterator[ast.Attribute]:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Store)
            and is_self_attribute(node)
        ):
            yield node


def _exempt_tuple(cls: ast.ClassDef, exempt_attr: str) -> tuple[tuple[str, ...], ast.AST | None]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == exempt_attr for t in targets):
            continue
        resolved = string_tuple(value)
        if resolved is None:
            return (), stmt
        return resolved[0], stmt
    return (), None
