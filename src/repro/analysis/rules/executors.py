"""REP007: ShardExecutor subclasses must honour the executor protocol.

:class:`repro.sharding.executor.ShardExecutor` is the placement seam the
sharded engine — and now the supervised network fleet — depends on: four
implementations must stay drop-in interchangeable for the executor
matrix tests to mean anything.  Three drift modes pinned down
statically:

* a subclass missing one of the required methods (``start`` / ``call``
  / ``scatter``) silently inherits the base's ``NotImplementedError``
  and only fails at runtime, on whichever code path first exercises it;
* an override whose parameters drift from the protocol (renamed or
  reordered arguments, a dropped ``**kwargs``) breaks keyword call
  sites for exactly one executor — the matrix passes wherever the
  positional form happens to be used;
* executor dispatch (``.call`` / ``.scatter`` / ``.broadcast`` on an
  executor-named receiver) outside :mod:`repro.sharding` /
  :mod:`repro.fleet` — bare dispatch bypasses the engine layer that
  owns journaling, partitioning, and degradation policy, so crash
  recovery guarantees quietly stop applying.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Mapping, Sequence

from ..core import Finding, SourceFile, SourceTree
from .base import Rule, attr_chain, iter_classes, iter_methods, path_in

__all__ = ["ExecutorProtocolRule"]


def _signature_tokens(func: ast.FunctionDef) -> tuple[str, ...]:
    """A method's parameter names after ``self``, with vararg markers."""
    args = func.args
    tokens: list[str] = [a.arg for a in args.posonlyargs + args.args]
    if tokens and tokens[0] == "self":
        tokens = tokens[1:]
    if args.vararg is not None:
        tokens.append(f"*{args.vararg.arg}")
    for kwonly in args.kwonlyargs:
        tokens.append(kwonly.arg)
    if args.kwarg is not None:
        tokens.append(f"**{args.kwarg.arg}")
    return tuple(tokens)


def _normalize(tokens: Sequence[str]) -> tuple[str, ...]:
    """Compare vararg/kwarg by presence, named parameters by name."""
    out: list[str] = []
    for token in tokens:
        if token.startswith("**"):
            out.append("**")
        elif token.startswith("*"):
            out.append("*")
        else:
            out.append(token)
    return tuple(out)


class ExecutorProtocolRule(Rule):
    code = "REP007"
    name = "executor-protocol"
    description = (
        "ShardExecutor subclasses must implement start/call/scatter with "
        "protocol-matching signatures; executor dispatch stays inside "
        "repro.sharding / repro.fleet"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        bases = tuple(str(b) for b in options.get("base-classes", ("ShardExecutor",)))
        required = tuple(
            str(m) for m in options.get("required-methods", ("start", "call", "scatter"))
        )
        signatures = {
            str(name): tuple(str(t) for t in tokens)
            for name, tokens in dict(options.get("signatures", {})).items()
        }
        allowed = tuple(str(p) for p in options.get("allowed-paths", ()))
        dispatch = tuple(
            str(m)
            for m in options.get("dispatch-methods", ("call", "scatter", "broadcast"))
        )
        findings: list[Finding] = []
        for source in tree:
            for cls in iter_classes(source):
                if not _subclasses(cls, bases):
                    continue
                findings.extend(
                    self._check_class(source, cls, required, signatures)
                )
            if not path_in(source.rel_path, allowed):
                findings.extend(self._check_dispatch(source, dispatch))
        return findings

    def _check_class(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        required: Sequence[str],
        signatures: Mapping[str, tuple[str, ...]],
    ) -> Iterator[Finding]:
        methods = {m.name: m for m in iter_methods(cls)}
        for name in required:
            if name not in methods:
                yield self.finding(
                    source,
                    cls,
                    f"{cls.name} subclasses ShardExecutor but does not "
                    f"implement {name}(); the base raises "
                    "NotImplementedError at first use",
                )
        for name, expected in signatures.items():
            method = methods.get(name)
            if method is None:
                continue  # inheriting the base implementation is conforming
            got = _signature_tokens(method)
            if _normalize(got) != _normalize(expected):
                yield self.finding(
                    source,
                    method,
                    f"{cls.name}.{name}({', '.join(got)}) drifts from the "
                    f"executor protocol signature ({', '.join(expected)}); "
                    "keyword call sites break for this executor only",
                )

    def _check_dispatch(
        self, source: SourceFile, dispatch: Sequence[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in dispatch:
                continue
            receiver = attr_chain(func.value)
            if "executor" in receiver.lower():
                yield self.finding(
                    source,
                    node,
                    f"bare executor dispatch {receiver}.{func.attr}(...) "
                    "outside repro.sharding/repro.fleet bypasses journaling "
                    "and degradation policy; go through the engine surface",
                )


def _subclasses(cls: ast.ClassDef, bases: Sequence[str]) -> bool:
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name in bases:
            return True
    return False
