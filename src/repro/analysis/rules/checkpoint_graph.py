"""REP010: checkpoint completeness across the inheritance graph.

REP002 audits classes that define ``state_dict`` *and* ``load_state`` in
their own body — a per-file check by construction.  It is blind to the
dangerous variant: a subclass in another module adds mutable ``__init__``
state while *inheriting* its serialization.  ``DegreeObserver`` and
``FlakyObserver`` subclass ``StreamObserver`` across package boundaries;
a field added there would silently revert to its constructor default on
every restore, and no per-file rule can see it.

This rule walks the :class:`~repro.analysis.graph.ProjectGraph` MRO:
for every class whose checkpoint protocol is at least partly inherited,
each attribute assigned in the class's *own* ``__init__`` must be read
by some ``state_dict`` in the MRO (a ``return self.inner.state_dict()``
delegation counts — the delegate attribute is read) or listed in a
``_checkpoint_exempt`` tuple anywhere in the MRO.  Findings carry a
related location pointing at the inherited ``state_dict`` that misses
the attribute.  Classes that define both methods themselves are left to
REP002, so no site is reported twice.
"""

from __future__ import annotations

import ast
from typing import Any, Mapping

from ..core import Finding, RelatedLocation, SourceTree
from ..graph import ClassInfo, ProjectGraph
from .base import Rule, is_self_attribute
from .checkpoints import _ALWAYS_EXEMPT

__all__ = ["CheckpointGraphRule"]

_PROTOCOL = ("state_dict", "load_state")


class CheckpointGraphRule(Rule):
    code = "REP010"
    name = "checkpoint-completeness"
    description = (
        "subclasses inheriting the checkpoint protocol must have every own "
        "__init__ attribute serialized by an inherited state_dict or listed "
        "in _checkpoint_exempt"
    )

    def check(self, tree: SourceTree, config: Mapping[str, Any]) -> list[Finding]:
        options = self.options(config)
        exempt_attr = str(options.get("exempt-attribute", "_checkpoint_exempt"))
        graph = ProjectGraph.for_tree(tree)
        findings: list[Finding] = []
        for cls in graph.classes.values():
            owners = {
                method: graph.method_owner(cls, method) for method in _PROTOCOL
            }
            if any(owner is None for owner in owners.values()):
                continue  # not a checkpoint-protocol class
            if all(owner is not None and owner.qualname == cls.qualname
                   for owner in owners.values()):
                continue  # defines both itself: REP002's per-file jurisdiction
            serialized = self._serialized_attrs(graph, cls)
            exempt = set(graph.class_tuple(cls, exempt_attr)) | _ALWAYS_EXEMPT
            state_owner = owners["state_dict"]
            assert state_owner is not None
            for attr in sorted(set(cls.init_attrs) - serialized - exempt):
                store = cls.init_attrs[attr]
                findings.append(
                    self.finding(
                        cls.source,
                        store,
                        f"{cls.name}.{attr} is assigned in __init__ but the "
                        f"checkpoint protocol inherited from "
                        f"{state_owner.qualname} never serializes it; a "
                        "restore would silently reset it — serialize it, "
                        f"override state_dict, or list it in {exempt_attr}",
                        related=(
                            RelatedLocation(
                                state_owner.source.rel_path,
                                int(state_owner.methods["state_dict"].node.lineno),
                                f"inherited state_dict defined here omits "
                                f"{attr!r}",
                            ),
                        ),
                    )
                )
        return findings

    @staticmethod
    def _serialized_attrs(graph: ProjectGraph, cls: ClassInfo) -> set[str]:
        """Every ``self.<attr>`` read by any ``state_dict`` in the MRO."""
        out: set[str] = set()
        for owner in graph.mro(cls):
            method = owner.methods.get("state_dict")
            if method is None:
                continue
            for node in ast.walk(method.node):
                if isinstance(node, ast.Attribute) and is_self_attribute(node):
                    out.add(node.attr)
        return out
