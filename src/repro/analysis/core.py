"""Core data model: findings, parsed source files, suppression scanning.

A :class:`SourceTree` is the unit every rule sees: all files parsed once,
with per-line ``# repro: noqa[CODE]`` suppressions pre-extracted, so the
whole analysis costs one ``ast.parse`` per file regardless of how many
rules run.  A :class:`Finding` is one rule violation at one source
location; its :meth:`Finding.fingerprint` hashes the rule, file, and the
*text* of the offending line (not its number), so baselined findings
survive unrelated edits above them.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "Finding",
    "RelatedLocation",
    "SourceFile",
    "SourceTree",
    "iter_py_files",
    "project_root_for",
]

#: Inline suppression: ``# repro: noqa`` (all rules) or
#: ``# repro: noqa[REP001]`` / ``# repro: noqa[REP001,REP004]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s-]+)\])?")


@dataclass(frozen=True)
class RelatedLocation:
    """A secondary location a cross-module finding points at.

    The primary location is where the violation must be fixed; related
    locations explain *why* it is a violation (the thread entry point
    that reaches a mutation, the inherited ``state_dict`` that misses an
    attribute, the conflicting lock ordering in another module).
    """

    path: str
    line: int
    note: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one primary source location.

    Cross-module rules attach :class:`RelatedLocation` evidence spanning
    other files; the fingerprint stays a function of the primary location
    only, so baselines survive edits to the evidence files.
    """

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    related: tuple[RelatedLocation, ...] = ()

    def fingerprint(self, line_text: str) -> str:
        """Stable identity for baselining: rule + file + offending text."""
        payload = f"{self.code}:{self.path}:{line_text.strip()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class SourceFile:
    """One parsed Python file plus its suppression map."""

    def __init__(self, path: Path, rel_path: str, text: str) -> None:
        self.path = path
        #: Posix-style path relative to the project root (reporting key).
        self.rel_path = rel_path
        self.text = text
        self.lines: list[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        #: line number -> suppressed codes (``None`` = every rule).
        self.noqa: dict[int, frozenset[str] | None] = _scan_noqa(self.lines)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, code: str, lineno: int) -> bool:
        """Whether ``code`` is suppressed by a noqa comment on ``lineno``."""
        codes = self.noqa.get(lineno, frozenset())
        return codes is None or code in (codes or frozenset())

    def finding(
        self,
        code: str,
        rule: str,
        node: ast.AST,
        message: str,
        related: tuple[RelatedLocation, ...] = (),
    ) -> Finding:
        """Build a finding anchored at an AST node of this file."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(code, rule, self.rel_path, int(lineno), int(col), message, related)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SourceFile({self.rel_path})"


def _scan_noqa(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        raw = match.group(1)
        if raw is None:
            out[lineno] = None  # blanket suppression
        else:
            out[lineno] = frozenset(
                code.strip().upper() for code in raw.split(",") if code.strip()
            )
    return out


@dataclass
class SourceTree:
    """Every file under analysis, parsed once and shared by all rules."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)

    def by_rel_path(self, rel_path: str) -> SourceFile | None:
        for source in self.files:
            if source.rel_path == rel_path:
                return source
        return None

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)

    @classmethod
    def load(cls, root: Path, paths: Sequence[Path]) -> "SourceTree":
        """Parse every ``.py`` file under ``paths`` (syntax errors raise)."""
        tree = cls(root=root)
        for path in iter_py_files(paths):
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            tree.files.append(SourceFile(path, rel, path.read_text(encoding="utf-8")))
        tree.files.sort(key=lambda source: source.rel_path)
        return tree


def iter_py_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file sequence."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def project_root_for(path: Path) -> Path:
    """The nearest ancestor holding ``pyproject.toml`` (fallback: the path)."""
    start = path.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start
