"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (or artifact updated / baseline written or
pruned), 1 = findings reported, 2 = usage error, generation error, or
internal analyzer error.  CI keys off the distinction: 1 means the
*code under analysis* is in violation; 2 means the *analyzer itself*
failed and the result must not be trusted as clean.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

from .baseline import Baseline
from .config import load_config
from .core import SourceTree, project_root_for
from .generate import GenerationError, update_metric_catalog, update_state_manifest
from .reporters import RENDERERS
from .rules import ALL_RULES
from .runner import run_analysis

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: <root>/src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule codes/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule codes/names to skip",
    )
    parser.add_argument(
        "--format",
        choices=sorted(RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline file (default: from configuration)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries that no longer match any finding",
    )
    parser.add_argument(
        "--update-metric-catalog",
        action="store_true",
        help="regenerate the metric catalog from registration sites",
    )
    parser.add_argument(
        "--update-state-manifest",
        action="store_true",
        help="regenerate the checkpoint state-shape manifest",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<20} {rule.description}")
        return 0

    root = project_root_for(args.paths[0] if args.paths else Path.cwd())
    paths = [Path(p) for p in args.paths] or [root / "src"]

    if args.update_metric_catalog or args.update_state_manifest:
        config = load_config(root)
        tree = SourceTree.load(root, paths)
        try:
            if args.update_metric_catalog:
                print(f"wrote {update_metric_catalog(root, tree, config)}")
            if args.update_state_manifest:
                print(f"wrote {update_state_manifest(root, tree, config)}")
        except GenerationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    overrides: dict[str, Any] = {}
    select = _split(args.select)
    ignore = _split(args.ignore)
    if select:
        overrides["select"] = select
    if ignore:
        overrides["ignore"] = ignore

    try:
        report = run_analysis(
            root, paths, overrides=overrides, baseline_path=args.baseline
        )
    except (OSError, SyntaxError, ValueError) as exc:
        # The analyzer itself failed (unreadable tree, corrupt baseline,
        # bad config): exit 2, distinct from "violations found" (1), so
        # CI never mistakes a crashed run for a clean one.
        print(f"internal analyzer error: {exc}", file=sys.stderr)
        return 2

    config = load_config(root, overrides)
    baseline_path = args.baseline or root / str(
        config.get("baseline", "analysis-baseline.json")
    )

    if args.write_baseline:
        pairs = list(zip(report.findings, report.fingerprints)) + report.baselined
        Baseline.from_findings(pairs).save(baseline_path)
        print(f"wrote {baseline_path} ({len(pairs)} findings baselined)")
        return 0

    if args.prune_baseline:
        baseline = Baseline.load(baseline_path)
        for fingerprint in report.stale_baseline:
            baseline.entries.pop(fingerprint, None)
        baseline.save(baseline_path)
        print(
            f"pruned {len(report.stale_baseline)} stale "
            f"entr{'y' if len(report.stale_baseline) == 1 else 'ies'} from "
            f"{baseline_path} ({len(baseline)} kept)"
        )
        report.stale_baseline = []

    rendered = RENDERERS[args.format](report)
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return report.exit_code


def _split(values: Sequence[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out
