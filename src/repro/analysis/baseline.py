"""Baseline file: known findings tolerated (with justification) during adoption.

A baseline maps finding fingerprints (rule + file + offending line text,
see :meth:`repro.analysis.core.Finding.fingerprint`) to a recorded entry.
Findings whose fingerprint appears in the baseline are reported as
*baselined* instead of failing the run — the adoption path for a rule
that surfaces violations which cannot be fixed immediately.  The policy
for this repository is an **empty** baseline: fix the code, or justify
the entry line-by-line in review (the ``justification`` field exists so
that review has somewhere to live).

``python -m repro.analysis --write-baseline`` snapshots the current
findings; stale entries (fingerprints no longer produced) are reported so
baselines shrink monotonically instead of rotting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .core import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """Fingerprint -> recorded-entry map with load/save/match helpers."""

    def __init__(self, entries: dict[str, dict[str, str]] | None = None) -> None:
        self.entries: dict[str, dict[str, str]] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (missing file = empty baseline)."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path} is not a version-{BASELINE_VERSION} analysis baseline"
            )
        findings = data.get("findings", {})
        if not isinstance(findings, dict):
            raise ValueError(f"{path}: 'findings' must be an object")
        entries: dict[str, dict[str, str]] = {}
        for fingerprint, entry in findings.items():
            if not isinstance(entry, dict):
                raise ValueError(f"{path}: baseline entry {fingerprint!r} must be an object")
            entries[str(fingerprint)] = {str(k): str(v) for k, v in entry.items()}
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {"version": BASELINE_VERSION, "findings": self.entries}
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", "utf-8")

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale_fingerprints(self, live: Sequence[str]) -> list[str]:
        """Baseline entries no longer matched by any current finding."""
        current = set(live)
        return sorted(fp for fp in self.entries if fp not in current)

    @classmethod
    def from_findings(cls, pairs: Sequence[tuple[Finding, str]]) -> "Baseline":
        """Snapshot ``(finding, fingerprint)`` pairs into a new baseline."""
        entries: dict[str, dict[str, str]] = {}
        for finding, fingerprint in pairs:
            entries[fingerprint] = {
                "rule": finding.code,
                "path": finding.path,
                "message": finding.message,
                "justification": "",
            }
        return cls(entries)
