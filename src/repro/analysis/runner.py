"""The analysis driver: load, run rules, partition, report.

:func:`run_analysis` is the one entry point shared by the CLI, the test
suite, and the self-check test: parse every file once, run the selected
rules over the shared :class:`~repro.analysis.core.SourceTree`, then
partition raw findings into *reported* (fail the run), *suppressed*
(inline ``# repro: noqa``), and *baselined* (recorded in the baseline
file).  Output ordering is deterministic — findings sort by path, line,
column, code — so golden-file tests and CI diffs are stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from .baseline import Baseline
from .config import load_config
from .core import Finding, SourceTree
from .rules import ALL_RULES, Rule

__all__ = ["AnalysisReport", "run_analysis", "select_rules"]


@dataclass
class AnalysisReport:
    """Everything a reporter needs, pre-sorted and pre-partitioned."""

    findings: list[Finding] = field(default_factory=list)
    #: Parallel to ``findings`` (same order, same length).
    fingerprints: list[str] = field(default_factory=list)
    suppressed: int = 0
    baselined: list[tuple[Finding, str]] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()
    rule_descriptions: list[dict[str, str]] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def select_rules(
    config: Mapping[str, Any], rules: Sequence[Rule] | None = None
) -> list[Rule]:
    """Apply the ``select`` / ``ignore`` lists (codes or kebab-case names)."""
    if rules is None:
        rules = ALL_RULES
    select = {str(s).upper() for s in config.get("select", [])}
    select |= {str(s).lower() for s in config.get("select", [])}
    ignore = {str(s).upper() for s in config.get("ignore", [])}
    ignore |= {str(s).lower() for s in config.get("ignore", [])}
    chosen: list[Rule] = []
    for rule in rules:
        keys = {rule.code, rule.name}
        if select and not (keys & select):
            continue
        if keys & ignore:
            continue
        chosen.append(rule)
    return chosen


def run_analysis(
    root: Path,
    paths: Sequence[Path] | None = None,
    *,
    overrides: Mapping[str, Any] | None = None,
    rules: Sequence[Rule] | None = None,
    baseline_path: Path | None = None,
) -> AnalysisReport:
    """Run the selected rules over ``paths`` (default: ``<root>/src``)."""
    config = load_config(root, overrides)
    tree = SourceTree.load(root, list(paths) if paths else [root / "src"])
    active = select_rules(config, rules)

    raw: list[Finding] = []
    for rule in active:
        raw.extend(rule.check(tree, config))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))

    if baseline_path is None:
        baseline_path = root / str(config.get("baseline", "analysis-baseline.json"))
    baseline = Baseline.load(baseline_path)

    report = AnalysisReport(
        files_scanned=len(tree),
        rules_run=tuple(rule.code for rule in active),
        rule_descriptions=[
            {"id": rule.code, "name": rule.name, "description": rule.description}
            for rule in active
        ],
    )
    live_fingerprints: list[str] = []
    for finding in raw:
        source = tree.by_rel_path(finding.path)
        if source is not None and source.is_suppressed(finding.code, finding.line):
            report.suppressed += 1
            continue
        line_text = source.line_text(finding.line) if source is not None else ""
        fingerprint = finding.fingerprint(line_text)
        live_fingerprints.append(fingerprint)
        if fingerprint in baseline:
            report.baselined.append((finding, fingerprint))
        else:
            report.findings.append(finding)
            report.fingerprints.append(fingerprint)
    report.stale_baseline = baseline.stale_fingerprints(live_fingerprints)
    return report
