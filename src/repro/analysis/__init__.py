"""``repro.analysis``: the repository's own static-analysis pass.

The estimator/sharding/resilience stack rests on conventions no
off-the-shelf linter checks: every ``repro_*`` metric registration must
agree with the generated catalog or :meth:`MetricsRegistry.merge` raises
at runtime when shard registries fold together; every checkpointed class
must serialize (or explicitly exempt) each piece of ``__init__`` state or
recovery silently drops it; functions dispatched through process shards
must stay picklable and deterministic; and estimator math must never
compare floats with ``==``.  This package turns those conventions into
CI-enforced invariants: a small AST-walking rule engine
(:mod:`repro.analysis.runner`) with per-rule configuration
(:mod:`repro.analysis.config`), inline ``# repro: noqa[CODE]``
suppressions, a baseline file (:mod:`repro.analysis.baseline`), and
text / JSON / SARIF reporters (:mod:`repro.analysis.reporters`).

Run it as ``python -m repro.analysis [paths]`` or ``make analyze``; the
rule catalog lives in :mod:`repro.analysis.rules` and is documented in
``docs/STATIC_ANALYSIS.md``.  The package is deliberately stdlib-only and
fully type-annotated — it is the ``mypy --strict`` beachhead for the rest
of the codebase.
"""

from __future__ import annotations

from .core import Finding, SourceFile, SourceTree
from .rules import ALL_RULES, Rule
from .runner import AnalysisReport, run_analysis

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "Rule",
    "SourceFile",
    "SourceTree",
    "run_analysis",
]
