"""The whole-program layer: one AST pass, queryable cross-module indexes.

Per-file rules see one :class:`~repro.analysis.core.SourceFile` at a
time; the invariants added in this package's second generation (lock
discipline on executor call paths, checkpoint completeness across an
inheritance chain, metric names referenced far from their registration)
are properties of the *program*, not of any file.  :class:`ProjectGraph`
digests a parsed :class:`~repro.analysis.core.SourceTree` into:

* a **module index** — project-relative paths mapped to dotted module
  names, with each module's import aliases resolved (``from ..obs import
  metrics`` becomes ``repro.obs.metrics``);
* a **symbol table** per module — every top-level class, function, and
  assignment;
* a **class index** — methods, attribute stores, first-assigned
  ``__init__`` values (so rules can ask "is ``self._lock`` a
  ``threading.Lock``?"), literal class-level tuples
  (``_checkpoint_exempt`` and friends), and best-effort resolved base
  classes for cross-module subclass closures;
* a **function index** covering methods and nested functions (a
  ``threading.Thread(target=run)`` closure target is a first-class call
  graph node);
* a **call graph** — conservatively resolved: ``self.method()`` through
  the project MRO, bare names through module scope and imports, dotted
  names through the import table, attribute receivers through declared
  annotations or first-assigned constructor calls.  Unresolvable calls
  produce *no* edge, so closures computed over the graph under-approximate
  reachability instead of drowning rules in false positives.

The graph is built once per analysis run and cached on the tree, so ten
cross-module rules cost one traversal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from .core import SourceFile, SourceTree
from .rules.base import attr_chain, call_name, string_tuple

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "constructor_call",
    "module_name_for",
    "walk_own",
]

#: Graph caches keyed by ``id(tree)`` (a SourceTree is unhashable).
_GRAPH_CACHE: dict[int, tuple[SourceTree, "ProjectGraph"]] = {}


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a project-relative posix path.

    ``src/repro/obs/metrics.py`` -> ``repro.obs.metrics``; a package
    ``__init__.py`` names the package itself.
    """
    parts = rel_path.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class FunctionInfo:
    """One function, method, or nested function in the program."""

    qualname: str
    module: str
    source: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Owning class (``None`` for module-level and functions nested in them).
    cls: "ClassInfo | None" = None
    #: Sibling scope for nested defs: local name -> nested FunctionInfo.
    nested: dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    """One class definition plus its pre-digested attribute facts."""

    qualname: str
    module: str
    source: SourceFile
    node: ast.ClassDef
    #: Base expressions as dotted text, resolved through imports when possible.
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> first value expression assigned to ``self.attr`` anywhere.
    attr_values: dict[str, ast.expr] = field(default_factory=dict)
    #: attr -> every ``self.attr`` (or ``self.attr[...]``) store site.
    attr_stores: dict[str, list[ast.AST]] = field(default_factory=dict)
    #: Attributes assigned in ``__init__`` specifically.
    init_attrs: dict[str, ast.AST] = field(default_factory=dict)
    #: Literal class-level string tuples (``_checkpoint_exempt`` etc.).
    class_tuples: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Class-level ``attr: Annotation`` declarations, as dotted text.
    attr_annotations: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassInfo({self.qualname})"


@dataclass
class ModuleInfo:
    """One module: its file, symbols, and import table."""

    name: str
    source: SourceFile
    #: alias -> fully qualified target (module, class, or function).
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level name -> defining AST node.
    symbols: dict[str, ast.AST] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModuleInfo({self.name})"


class ProjectGraph:
    """Cross-module indexes over one parsed source tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: callee qualname -> caller FunctionInfos (reverse call edges).
        self._callers: dict[str, list[FunctionInfo]] = {}
        #: caller qualname -> resolved callee qualnames (forward edges).
        self._callees: dict[str, list[tuple[ast.Call, str]]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def for_tree(cls, tree: SourceTree) -> "ProjectGraph":
        """The (cached) graph for one tree; built on first request."""
        cached = _GRAPH_CACHE.get(id(tree))
        if cached is not None and cached[0] is tree:
            return cached[1]
        graph = cls.build(tree)
        _GRAPH_CACHE.clear()  # one live analysis run at a time
        _GRAPH_CACHE[id(tree)] = (tree, graph)
        return graph

    @classmethod
    def build(cls, tree: SourceTree) -> "ProjectGraph":
        graph = cls()
        for source in tree:
            graph._index_module(source)
        graph._resolve_bases()
        for info in list(graph.functions.values()):
            graph._index_calls(info)
        return graph

    def _index_module(self, source: SourceFile) -> None:
        name = module_name_for(source.rel_path)
        module = ModuleInfo(name=name, source=source)
        self.modules[name] = module
        for stmt in source.tree.body:
            self._index_import(module, stmt)
            for target in _assign_targets(stmt):
                module.symbols[target] = stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.symbols[stmt.name] = stmt
                self._index_function(module, source, stmt, prefix=name, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                module.symbols[stmt.name] = stmt
                self._index_class(module, source, stmt)

    def _index_import(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname is not None:
                    module.imports[alias.asname] = alias.name
                else:
                    module.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                # Relative import: climb from the current package.
                package = module.name.split(".")
                if module.source.rel_path.rsplit("/", 1)[-1] != "__init__.py":
                    package = package[:-1]
                climb = stmt.level - 1
                package = package[: len(package) - climb] if climb else package
                base = ".".join(package + ([stmt.module] if stmt.module else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_class(
        self, module: ModuleInfo, source: SourceFile, node: ast.ClassDef
    ) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(qualname=qualname, module=module.name, source=source, node=node)
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(module, source, stmt, prefix=qualname, cls=info)
                info.methods[stmt.name] = fn
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                annotation = _annotation_text(stmt.annotation)
                if annotation:
                    info.attr_annotations[stmt.target.id] = annotation
                if stmt.value is not None:
                    resolved = string_tuple(stmt.value)
                    if resolved is not None:
                        info.class_tuples[stmt.target.id] = resolved[0]
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        resolved = string_tuple(stmt.value)
                        if resolved is not None:
                            info.class_tuples[target.id] = resolved[0]
        for method in info.methods.values():
            for store_node, attr in _self_stores(method.node):
                info.attr_stores.setdefault(attr, []).append(store_node)
                if isinstance(store_node, ast.Attribute):
                    value = _store_value(method.node, store_node)
                    # Prefer the store that constructs something: the
                    # ``self._locks = []`` placeholder in __init__ must not
                    # shadow the ``self._locks = [Lock() ...]`` in start().
                    existing = info.attr_values.get(attr)
                    if value is not None and (
                        existing is None
                        or (
                            constructor_call(existing) is None
                            and constructor_call(value) is not None
                        )
                    ):
                        info.attr_values[attr] = value
                if method.name == "__init__":
                    info.init_attrs.setdefault(attr, store_node)

    def _index_function(
        self,
        module: ModuleInfo,
        source: SourceFile,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        cls: ClassInfo | None,
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname, module=module.name, source=source, node=node, cls=cls
        )
        self.functions[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self._index_function(module, source, stmt, qualname, cls)
                info.nested[stmt.name] = nested
        return info

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            bases: list[str] = []
            for base in info.node.bases:
                dotted = attr_chain(base)
                if not dotted:
                    continue
                bases.append(self.resolve(info.module, dotted) or dotted)
            info.bases = tuple(bases)

    def _index_calls(self, info: FunctionInfo) -> None:
        edges: list[tuple[ast.Call, str]] = []
        for node in walk_own(info.node, include_nested=False):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(info, node)
            if target is None:
                continue
            edges.append((node, target))
            self._callers.setdefault(target, []).append(info)
        self._callees[info.qualname] = edges

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve dotted text in a module's scope to a qualified name.

        Returns ``None`` when the head is neither a module symbol nor an
        import alias (builtins, locals, parameters).
        """
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in info.imports:
            target = info.imports[head]
            return f"{target}.{rest}" if rest else target
        if head in info.symbols:
            qualname = f"{module}.{head}"
            return f"{qualname}.{rest}" if rest else qualname
        return None

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Best-effort qualified name of a call target (``None`` = unknown)."""
        name = call_name(call)
        if not name:
            return None
        parts = name.split(".")
        if parts[0] == "self" and fn.cls is not None:
            if len(parts) == 2:
                owner = self.method_owner(fn.cls, parts[1])
                if owner is not None:
                    return f"{owner.qualname}.{parts[1]}"
                return None
            if len(parts) == 3:
                # self.<attr>.<method>(): type the receiver through its
                # class-level annotation or first-assigned constructor.
                target_cls = self.attr_class(fn.cls, parts[1])
                if target_cls is not None:
                    owner = self.method_owner(target_cls, parts[2])
                    if owner is not None:
                        return f"{owner.qualname}.{parts[2]}"
            return None
        if len(parts) == 1:
            # Nested sibling scope first, then module scope and imports.
            scope: FunctionInfo | None = fn
            while scope is not None:
                nested = scope.nested.get(parts[0])
                if nested is not None:
                    return nested.qualname
                scope = self._parent_function(scope)
        resolved = self.resolve(fn.module, name)
        if resolved is None:
            return None
        if resolved in self.functions or resolved in self.classes:
            return resolved
        # Method access through a resolved class (Class.method / mod.fn).
        owner_name, _, attr = resolved.rpartition(".")
        owner_cls = self.classes.get(owner_name)
        if owner_cls is not None and attr:
            owner = self.method_owner(owner_cls, attr)
            if owner is not None:
                return f"{owner.qualname}.{attr}"
        return resolved

    def _parent_function(self, fn: FunctionInfo) -> FunctionInfo | None:
        parent_qual = fn.qualname.rsplit(".", 1)[0]
        return self.functions.get(parent_qual)

    def attr_class(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        """The project class an instance attribute holds, when inferable."""
        for owner in self.mro(cls):
            annotation = owner.attr_annotations.get(attr)
            if annotation is not None:
                resolved = self.resolve(owner.module, annotation) or (
                    f"{owner.module}.{annotation}" if "." not in annotation else None
                )
                if resolved is not None and resolved in self.classes:
                    return self.classes[resolved]
            value = owner.attr_values.get(attr)
            if value is None:
                continue
            target = _constructed_class(value)
            if target is None:
                continue
            resolved = self.resolve(owner.module, target)
            if resolved is not None and resolved in self.classes:
                return self.classes[resolved]
        return None

    # ------------------------------------------------------------------ #
    # hierarchy
    # ------------------------------------------------------------------ #

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Project-local linearization: the class, then bases depth-first."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            for base in current.bases:
                base_cls = self.classes.get(base)
                if base_cls is not None:
                    stack.append(base_cls)
        return out

    def method_owner(self, cls: ClassInfo, method: str) -> ClassInfo | None:
        """The MRO class defining ``method``, or ``None`` if external."""
        for owner in self.mro(cls):
            if method in owner.methods:
                return owner
        return None

    def class_tuple(self, cls: ClassInfo, name: str) -> tuple[str, ...]:
        """A literal class tuple, unioned across the project MRO."""
        values: list[str] = []
        for owner in self.mro(cls):
            for value in owner.class_tuples.get(name, ()):
                if value not in values:
                    values.append(value)
        return tuple(values)

    def subclasses_of(self, base_names: Iterable[str]) -> list[ClassInfo]:
        """Every project class whose MRO reaches a base named in ``base_names``.

        Entries may be fully qualified (``repro.streams.relation.StreamObserver``)
        or bare class names (``StreamObserver``), matched against resolved
        base qualnames and their last segment respectively.
        """
        wanted = set(base_names)
        out: list[ClassInfo] = []
        for cls in self.classes.values():
            for ancestor in self.mro(cls):
                hit = any(
                    base in wanted or base.rsplit(".", 1)[-1] in wanted
                    for base in ancestor.bases
                )
                if hit or ancestor.qualname in wanted or ancestor.name in wanted:
                    if ancestor.qualname != cls.qualname or hit:
                        out.append(cls)
                        break
        return out

    # ------------------------------------------------------------------ #
    # call graph
    # ------------------------------------------------------------------ #

    def callees(self, fn: FunctionInfo) -> list[tuple[ast.Call, str]]:
        """Resolved ``(call node, target qualname)`` edges out of ``fn``."""
        return self._callees.get(fn.qualname, [])

    def callers_of(self, qualname: str) -> list[FunctionInfo]:
        """Functions holding a resolved call edge to ``qualname``."""
        return list(self._callers.get(qualname, []))

    def function(self, qualname: str) -> FunctionInfo | None:
        """Look up a function/method; a class qualname maps to ``__init__``."""
        fn = self.functions.get(qualname)
        if fn is not None:
            return fn
        cls = self.classes.get(qualname)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def reachable(
        self,
        roots: Iterable[FunctionInfo],
        follow: Callable[[FunctionInfo, ast.Call, FunctionInfo], bool] | None = None,
    ) -> dict[str, FunctionInfo]:
        """Transitive call closure from ``roots`` over resolved edges.

        ``follow(caller, call, callee)`` can prune edges (return ``False``
        to stop traversal down that edge).
        """
        out: dict[str, FunctionInfo] = {}
        stack = list(roots)
        while stack:
            fn = stack.pop()
            if fn.qualname in out:
                continue
            out[fn.qualname] = fn
            for call, target in self.callees(fn):
                callee = self.function(target)
                if callee is None:
                    continue
                if follow is not None and not follow(fn, call, callee):
                    continue
                stack.append(callee)
        return out


# ---------------------------------------------------------------------- #
# AST helpers
# ---------------------------------------------------------------------- #


def _assign_targets(stmt: ast.stmt) -> Iterator[str]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        yield stmt.target.id


def walk_own(
    func: ast.FunctionDef | ast.AsyncFunctionDef, include_nested: bool = True
) -> Iterator[ast.AST]:
    """Walk a function body; optionally skip nested function bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not include_nested and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _self_stores(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, str]]:
    """``(store node, attribute name)`` for ``self.x = ...`` / ``self.x[k] = ...``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                yield node, node.attr
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            target = node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield node, target.attr


def _store_value(
    func: ast.FunctionDef | ast.AsyncFunctionDef, store: ast.AST
) -> ast.expr | None:
    """The value expression assigned at a given ``self.x = value`` store."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and store in node.targets:
            return node.value
        if isinstance(node, ast.AnnAssign) and node.target is store:
            return node.value
    return None


def _annotation_text(annotation: ast.expr) -> str:
    """Dotted text of an annotation (string annotations unquoted)."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip("\"' ")
    text = attr_chain(annotation)
    return text


def constructor_call(value: ast.expr) -> ast.Call | None:
    """The constructor call a value expression wraps, if any.

    Recognizes ``C(...)``, ``[C(...) for ...]``, and ``[C(...), ...]`` —
    the attribute-initialization idioms the concurrency and async rules
    type receivers with (a list of per-shard locks or single-lane pools
    types the same as one).
    """
    if isinstance(value, ast.Call):
        return value
    if isinstance(value, ast.ListComp):
        return constructor_call(value.elt)
    if isinstance(value, (ast.List, ast.Tuple)) and value.elts:
        return constructor_call(value.elts[0])
    return None


def _constructed_class(value: ast.expr) -> str | None:
    """Dotted class name a value expression constructs, if any."""
    call = constructor_call(value)
    if call is None:
        return None
    return call_name(call) or None
