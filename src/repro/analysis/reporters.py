"""Reporters: human text, machine JSON, and SARIF 2.1.0 output.

The text form is the terminal default (one ``path:line:col CODE message``
line per finding plus a summary).  JSON is the stable machine surface for
scripts; SARIF is the interchange format CI code-scanning UIs ingest
(uploaded as an artifact by the ``analyze`` job).  All three are
deterministic: findings arrive pre-sorted from the runner.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import AnalysisReport

__all__ = ["render_json", "render_sarif", "render_text"]

REPORT_VERSION = 1
_TOOL_NAME = "repro-analysis"


def render_text(report: "AnalysisReport") -> str:
    """One line per finding, then a summary block."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.code} {finding.message}")
        for related in finding.related:
            lines.append(f"    {related.location()}: {related.note}")
    if report.findings:
        lines.append("")
    parts = [
        f"{len(report.findings)} finding{'s' if len(report.findings) != 1 else ''}",
        f"{report.files_scanned} files",
        f"{len(report.rules_run)} rules",
    ]
    if report.suppressed:
        parts.append(f"{report.suppressed} suppressed by noqa")
    if report.baselined:
        parts.append(f"{len(report.baselined)} baselined")
    lines.append(", ".join(parts))
    for fingerprint in report.stale_baseline:
        lines.append(
            f"warning: baseline entry {fingerprint} no longer matches any "
            "finding; remove it"
        )
    return "\n".join(lines) + "\n"


def render_json(report: "AnalysisReport") -> str:
    findings: list[dict[str, Any]] = []
    for finding, fingerprint in zip(report.findings, report.fingerprints):
        entry: dict[str, Any] = {
            "rule": finding.code,
            "name": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "fingerprint": fingerprint,
        }
        if finding.related:
            # Cross-module evidence; absent for single-file findings so
            # pre-existing golden outputs stay byte-stable.
            entry["related"] = [
                {"path": rel.path, "line": rel.line, "note": rel.note}
                for rel in finding.related
            ]
        findings.append(entry)
    payload: dict[str, Any] = {
        "version": REPORT_VERSION,
        "tool": _TOOL_NAME,
        "findings": findings,
        "summary": {
            "files_scanned": report.files_scanned,
            "rules_run": list(report.rules_run),
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "baselined": len(report.baselined),
            "stale_baseline": list(report.stale_baseline),
        },
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def render_sarif(report: "AnalysisReport") -> str:
    """Minimal SARIF 2.1.0 log: one run, one result per finding."""
    rule_index: dict[str, int] = {}
    rules: list[dict[str, Any]] = []
    for rule in report.rule_descriptions:
        rule_index[rule["id"]] = len(rules)
        rules.append(
            {
                "id": rule["id"],
                "name": rule["name"],
                "shortDescription": {"text": rule["description"]},
            }
        )
    results: list[dict[str, Any]] = []
    for finding, fingerprint in zip(report.findings, report.fingerprints):
        result: dict[str, Any] = {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "partialFingerprints": {"reproAnalysis/v1": fingerprint},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.related:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": rel.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": rel.line},
                    },
                    "message": {"text": rel.note},
                }
                for rel in finding.related
            ]
        results.append(result)
    log: dict[str, Any] = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=1, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
