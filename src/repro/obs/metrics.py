"""Metric primitives and the registry that owns them.

The observability layer's storage model is deliberately small: three
primitive kinds — monotonic :class:`Counter`, free-moving :class:`Gauge`,
and fixed-bucket :class:`LatencyHistogram` — owned by one
:class:`MetricsRegistry` per telemetry domain (one per engine in
practice).  Each metric may carry *labels* (relation / query / method
names), in which case the registry hands out a :class:`MetricFamily`
whose ``labels(...)`` method returns per-label-value children.

The primitives are plain Python attribute arithmetic — no locks, no
callbacks — so recording from the engine's ingest hot path costs about
as much as the ad-hoc dict updates they replaced.  Snapshots
(:meth:`MetricsRegistry.snapshot`) are JSON-compatible; the Prometheus
text rendering lives in :mod:`repro.obs.exporters`.
"""

from __future__ import annotations

import functools
import math
import threading
from typing import Any, Callable, Iterator, Mapping, Sequence, Union, cast

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "RELATIVE_ERROR_BUCKETS",
    "catalog_mismatches",
]

#: Fixed latency buckets (seconds), a 1-2.5-5 ladder from 1µs to 10s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed relative-error buckets, a 1-2.5-5 ladder from 0.01% to 1000%.
RELATIVE_ERROR_BUCKETS: tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value (ops, seconds, bytes...)."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative; counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> float:
        value = self._value
        return int(value) if value.is_integer() else value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (live queries, buffer fill...)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> float:
        value = self._value
        return int(value) if value.is_integer() else value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self._value})"


class LatencyHistogram:
    """Fixed-bucket histogram with streaming count/sum/percentiles.

    Buckets are cumulative-style upper bounds (Prometheus convention) with
    an implicit ``+Inf`` overflow bucket, so two histograms with the same
    bounds can be merged by adding their bucket counts.  ``percentile``
    interpolates linearly inside the winning bucket and clamps to the
    observed min/max, which keeps p50/p95 readable even when all mass
    lands in one bucket.  Despite the name, any non-negative quantity can
    be observed — the accuracy tracker reuses it for relative errors with
    :data:`RELATIVE_ERROR_BUCKETS`.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "bucket_counts", "_sum", "_count", "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observed value (``+inf`` before any observation)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observed value (``-inf`` before any observation)."""
        return self._max

    def observe(self, value: float) -> None:
        """Record one observation (binary search into the fixed buckets)."""
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), interpolated within its bucket.

        Edge semantics: ``p == 0`` is exactly the observed minimum and
        ``p == 100`` exactly the observed maximum (no interpolation
        involved); with no observations every percentile is ``nan``.
        Interpolated results are always clamped into ``[min, max]``, and
        a single observation returns itself for every ``p``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self._count == 0:
            return math.nan
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        target = p / 100.0 * self._count
        cumulative = 0
        lower = 0.0
        for i, bucket_count in enumerate(self.bucket_counts):
            upper = self.bounds[i] if i < len(self.bounds) else self._max
            if bucket_count:
                cumulative += bucket_count
                if cumulative >= target:
                    hi = min(upper, self._max)
                    lo = max(lower, self._min)
                    if hi <= lo:
                        return lo
                    fraction = (target - (cumulative - bucket_count)) / bucket_count
                    return lo + min(1.0, max(0.0, fraction)) * (hi - lo)
            lower = upper if i < len(self.bounds) else lower
        return self._max  # pragma: no cover - target <= count always hits

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
        }
        if self._count:
            out["p50"] = self.percentile(50)
            out["p95"] = self.percentile(95)
            out["p99"] = self.percentile(99)
            out["min"] = self._min
            out["max"] = self._max
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyHistogram({self.name}, n={self._count})"


#: Any unlabelled metric primitive.
Metric = Union[Counter, Gauge, LatencyHistogram]


class MetricFamily:
    """A labelled metric: one child primitive per label-value combination.

    ``family.labels(method="cosine")`` (or positionally,
    ``family.labels("cosine")``) returns the child metric for that label
    combination, creating it on first use.  Children are cached forever —
    label cardinality is expected to be small (relations, queries,
    methods), matching the Prometheus data model.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "_factory", "_children")

    def __init__(
        self,
        factory: Callable[[str], Metric],
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        if not labelnames:
            raise ValueError("a MetricFamily needs at least one label name")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._children: dict[tuple[str, ...], Metric] = {}
        self.kind = factory("_probe").kind

    def labels(self, *values: object, **kwvalues: object) -> Metric:
        """The child metric for one label-value combination (created lazily)."""
        if kwvalues:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                key = tuple(str(kwvalues.pop(name)) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r} for {self.name!r}") from None
            if kwvalues:
                raise ValueError(f"unknown labels {sorted(kwvalues)} for {self.name!r}")
        else:
            key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name!r} takes labels {self.labelnames}, got {len(key)} values"
            )
        child = self._children.get(key)
        if child is None:
            child = self._factory(self.name)
            self._children[key] = child
        return child

    def items(self) -> Iterator[tuple[tuple[str, ...], Metric]]:
        """Iterate ``(label_values, child_metric)`` pairs (sorted)."""
        return iter(sorted(self._children.items(), key=lambda kv: kv[0]))

    def as_value_dict(self) -> dict[str, object]:
        """``{label_values: snapshot}`` with single-label keys flattened."""
        out: dict[str, object] = {}
        for values, child in self.items():
            key = values[0] if len(values) == 1 else ",".join(values)
            out[key] = child.snapshot()
        return out

    def reset(self) -> None:
        """Forget every child (label combinations re-materialize on use).

        Matches dict-clear semantics: holders of child references must
        re-resolve through :meth:`labels` after a reset.
        """
        self._children.clear()

    def snapshot(self) -> dict[str, object]:
        return self.as_value_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricFamily({self.name}, labels={self.labelnames}, n={len(self._children)})"


class MetricsRegistry:
    """Owns a flat namespace of metrics; get-or-create by name.

    Re-requesting a name returns the existing object, so independent
    components (the :class:`~repro.streams.stats.EngineStats` facade, the
    accuracy tracker, user code) can share one registry without
    coordinating creation order.  Requesting an existing name with a
    different kind or label set is an error.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric | MetricFamily] = {}
        # Registration and merge are cold paths shared across threads
        # (shard registries fold into the coordinator's while the serve
        # daemon scrapes it); increments on the metrics themselves stay
        # lock-free.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        # Shard registries cross process boundaries by pickle; the lock
        # is per-process state and is recreated on the other side.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter | MetricFamily:
        return cast(
            "Counter | MetricFamily", self._get_or_create(Counter, name, help, labelnames)
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge | MetricFamily:
        return cast(
            "Gauge | MetricFamily", self._get_or_create(Gauge, name, help, labelnames)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> LatencyHistogram | MetricFamily:
        # functools.partial of a module-level function (not a closure) so
        # the resulting family survives pickling across process shards.
        factory = functools.partial(_make_histogram, buckets=tuple(buckets))
        return cast(
            "LatencyHistogram | MetricFamily",
            self._get_or_create(LatencyHistogram, name, help, labelnames, factory),
        )

    def _get_or_create(
        self,
        cls: type[Metric],
        name: str,
        help: str,
        labelnames: Sequence[str],
        factory: Callable[[str], Metric] | None = None,
    ) -> Metric | MetricFamily:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                want_labels = tuple(labelnames)
                if isinstance(existing, MetricFamily):
                    if existing.kind != cls.kind or existing.labelnames != want_labels:
                        raise ValueError(f"metric {name!r} already registered differently")
                elif not isinstance(existing, cls) or want_labels:
                    raise ValueError(f"metric {name!r} already registered differently")
                return existing
            make: Callable[[str], Metric] = factory if factory is not None else cls
            metric: Metric | MetricFamily
            if labelnames:
                metric = MetricFamily(make, name, help, labelnames)
            else:
                metric = make(name)
                metric.help = help
            self._metrics[name] = metric
            return metric

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's metrics into this one, in place.

        Merge semantics per kind: counters (and counter children) *sum*;
        gauges take the incoming value (last write wins); histograms add
        their bucket counts, counts, and sums (bucket bounds must match).
        Families merge child-by-child per label-value tuple, so disjoint
        label values (e.g. per-shard ``shard`` labels) simply collect
        side by side while colliding tuples combine by kind.  A name
        registered here with a different kind, label set, or bucket
        layout raises ``ValueError``.  Returns ``self`` for chaining.
        """
        with self._lock:
            for name, theirs in other.collect():
                mine = self._metrics.get(name)
                if mine is None:
                    mine = _structural_clone(theirs)
                    self._metrics[name] = mine
                else:
                    _check_mergeable(name, mine, theirs)
                _merge_metric(mine, theirs)
            return self

    def get(self, name: str) -> Metric | MetricFamily | None:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def collect(self) -> Iterator[tuple[str, Metric | MetricFamily]]:
        """Iterate ``(name, metric_or_family)`` sorted by name."""
        return iter(sorted(self._metrics.items(), key=lambda kv: kv[0]))

    def reset(self) -> None:
        """Zero every registered metric (identities are preserved)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> dict[str, dict[str, object]]:
        """One JSON-compatible dict for the whole registry."""
        out: dict[str, dict[str, object]] = {}
        for name, metric in self.collect():
            entry: dict[str, object] = {"type": metric.kind}
            if isinstance(metric, MetricFamily):
                entry["labels"] = list(metric.labelnames)
                entry["values"] = metric.snapshot()
            elif isinstance(metric, LatencyHistogram):
                entry.update(metric.snapshot())
            else:
                entry["value"] = metric.snapshot()
            out[name] = entry
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def as_labels(mapping: Mapping[str, object]) -> dict[str, str]:
    """Coerce attribute values to strings (exporter-friendly)."""
    return {k: str(v) for k, v in mapping.items()}


def _make_histogram(name: str, buckets: Sequence[float]) -> LatencyHistogram:
    """Module-level histogram factory (picklable, unlike a closure)."""
    return LatencyHistogram(name, buckets=buckets)


def _structural_clone(metric: Metric | MetricFamily) -> Metric | MetricFamily:
    """An empty metric with the same name/kind/labels/buckets as ``metric``."""
    if isinstance(metric, MetricFamily):
        return MetricFamily(metric._factory, metric.name, metric.help, metric.labelnames)
    if isinstance(metric, LatencyHistogram):
        return LatencyHistogram(metric.name, metric.help, buckets=metric.bounds)
    return type(metric)(metric.name, metric.help)


def _check_mergeable(
    name: str, mine: Metric | MetricFamily, theirs: Metric | MetricFamily
) -> None:
    """Reject merges across different kinds, label sets, or bucket layouts."""
    if isinstance(mine, MetricFamily) != isinstance(theirs, MetricFamily):
        raise ValueError(f"cannot merge metric {name!r}: labelled vs unlabelled")
    if isinstance(mine, MetricFamily) and isinstance(theirs, MetricFamily):
        if mine.kind != theirs.kind or mine.labelnames != theirs.labelnames:
            raise ValueError(
                f"cannot merge metric {name!r}: kind/labels differ "
                f"({mine.kind}{mine.labelnames} vs {theirs.kind}{theirs.labelnames})"
            )
        return
    if type(mine) is not type(theirs):
        raise ValueError(
            f"cannot merge metric {name!r}: {type(mine).__name__} "
            f"vs {type(theirs).__name__}"
        )
    if (
        isinstance(mine, LatencyHistogram)
        and isinstance(theirs, LatencyHistogram)
        and mine.bounds != theirs.bounds
    ):
        raise ValueError(f"cannot merge metric {name!r}: bucket bounds differ")


def _merge_metric(mine: Metric | MetricFamily, theirs: Metric | MetricFamily) -> None:
    """Fold one metric's value into its same-shape counterpart.

    ``mine`` is always the same shape as ``theirs`` here: callers go
    through :func:`_check_mergeable` (or a structural clone) first.
    """
    if isinstance(theirs, MetricFamily):
        assert isinstance(mine, MetricFamily)
        for values, child in theirs.items():
            _merge_metric(mine.labels(*values), child)
    elif isinstance(theirs, Counter):
        assert isinstance(mine, Counter)
        mine.inc(theirs.value)
    elif isinstance(theirs, Gauge):
        assert isinstance(mine, Gauge)
        mine.set(theirs.value)  # last write wins
    elif isinstance(theirs, LatencyHistogram):
        assert isinstance(mine, LatencyHistogram)
        for i, bucket_count in enumerate(theirs.bucket_counts):
            mine.bucket_counts[i] += bucket_count
        mine._sum += theirs._sum
        mine._count += theirs._count
        mine._min = min(mine._min, theirs._min)
        mine._max = max(mine._max, theirs._max)
    else:  # pragma: no cover - no other metric kinds exist
        raise TypeError(f"cannot merge metric of type {type(theirs).__name__}")


def catalog_mismatches(registry: MetricsRegistry) -> list[str]:
    """Runtime counterpart of the REP001 static rule.

    Compares every ``repro_*`` metric actually registered in ``registry``
    against the generated :data:`repro.obs.catalog.METRIC_CATALOG` and
    returns a human-readable problem list (empty = conformant).  Entries
    flagged ``shard_suffix`` accept an extra trailing ``shard`` label,
    matching the engine's per-shard registration idiom.
    """
    from .catalog import METRIC_CATALOG

    problems: list[str] = []
    for name, metric in registry.collect():
        if not name.startswith("repro_"):
            continue
        entry = METRIC_CATALOG.get(name)
        if entry is None:
            problems.append(f"{name}: not in the generated metric catalog")
            continue
        if metric.kind != entry["kind"]:
            problems.append(
                f"{name}: registered as {metric.kind}, catalogued as {entry['kind']}"
            )
            continue
        labels = metric.labelnames if isinstance(metric, MetricFamily) else ()
        expected = tuple(cast("Sequence[str]", entry["labels"]))
        if labels != expected and not (
            entry["shard_suffix"] and labels == expected + ("shard",)
        ):
            problems.append(
                f"{name}: registered with labels {labels}, catalogued with {expected}"
                + (" (+ optional shard)" if entry["shard_suffix"] else "")
            )
    return problems
