"""Online estimate-vs-exact accuracy tracking.

The paper's entire evaluation (Figures 3-20) is relative error of the
streaming estimate against the exact join size, measured offline after
the fact.  :class:`AccuracyTracker` turns that into a live runtime
signal: at a configurable ingest cadence it calls ``engine.answer(q)``
and ``engine.exact_answer(q)`` for each tracked query and folds the
relative error into streaming aggregates — sample count, running mean,
last observed value, and p50/p95 via the fixed-bucket histogram
primitive (:data:`~repro.obs.metrics.RELATIVE_ERROR_BUCKETS`).

Exact answers are affordable here for the same reason they are in the
experiments: reproduction-scale relations keep their exact frequency
tensors (``StreamRelation.counts``).  They are still the expensive part
— a full tensor contraction per query — which is why sampling is
cadence-based (every ``every_ops`` ingested operations) rather than
per-tuple.  Between cadence points the tracker costs one attribute read
and one integer comparison.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import TYPE_CHECKING, Mapping, Sequence, cast

from .metrics import (
    RELATIVE_ERROR_BUCKETS,
    Counter,
    LatencyHistogram,
    MetricFamily,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..streams.engine import ContinuousQueryEngine

__all__ = ["AccuracyTracker", "relative_error_of"]


def relative_error_of(estimate: float, exact: float) -> float:
    """``|estimate - exact| / max(|exact|, 1)`` — finite even at exact=0."""
    return abs(estimate - exact) / max(abs(exact), 1.0)


class AccuracyTracker:
    """Streaming relative-error aggregates for an engine's queries.

    ``queries=None`` tracks every query registered on the engine *at each
    sampling instant*, so queries registered mid-stream are picked up
    automatically; pass an explicit sequence to pin the set.  Aggregates
    live in the engine's metrics registry (``repro_accuracy_*``) so
    exporters see them alongside the ingest counters.
    """

    def __init__(
        self,
        engine: "ContinuousQueryEngine",
        every_ops: int = 1000,
        queries: Sequence[str] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if every_ops < 1:
            raise ValueError("every_ops must be >= 1")
        self.engine = engine
        self.every_ops = every_ops
        self.queries = tuple(queries) if queries is not None else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._error_hist = cast(
            MetricFamily,
            self.registry.histogram(
                "repro_accuracy_relative_error",
                "Streaming relative error of answer() vs exact_answer(), per query.",
                labelnames=("query",),
                buckets=RELATIVE_ERROR_BUCKETS,
            ),
        )
        self._samples = cast(
            MetricFamily,
            self.registry.counter(
                "repro_accuracy_samples_total",
                "Accuracy samples taken, per query.",
                labelnames=("query",),
            ),
        )
        self._sample_time = cast(
            Counter,
            self.registry.counter(
                "repro_accuracy_sampling_seconds_total",
                "Seconds spent computing accuracy samples (estimate + exact).",
            ),
        )
        self._last_error: dict[str, float] = {}
        self._last_sampled_at = 0

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def _tracked_queries(self) -> tuple[str, ...]:
        if self.queries is not None:
            return self.queries
        return tuple(self.engine._queries)

    def maybe_sample(self) -> dict[str, float] | None:
        """Sample iff ``every_ops`` operations flowed since the last sample.

        Called by the engine after every ingest entry point; the fast path
        (cadence not reached) is one counter read and one comparison.
        """
        ingested = self.engine.stats().tuples_ingested
        if ingested - self._last_sampled_at < self.every_ops:
            return None
        return self.sample_now()

    def sample_now(self) -> dict[str, float]:
        """Compare estimate vs exact for every tracked query, now.

        Queries that cannot be answered yet — e.g. a join whose other
        relation has not received data, leaving its synopsis empty — are
        skipped this round rather than letting the error escape into the
        caller's ingest path; they are picked up at the next cadence
        point once answerable.
        """
        start = perf_counter()
        errors: dict[str, float] = {}
        for name in self._tracked_queries():
            try:
                estimate = self.engine.answer(name)
            except ValueError:
                continue
            exact = self.engine.exact_answer(name)
            error = relative_error_of(estimate, exact)
            errors[name] = error
            cast(LatencyHistogram, self._error_hist.labels(query=name)).observe(error)
            cast(Counter, self._samples.labels(query=name)).inc()
            self._last_error[name] = error
        self._last_sampled_at = self.engine.stats().tuples_ingested
        self._sample_time.inc(perf_counter() - start)
        return errors

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def report(self) -> dict[str, dict[str, float]]:
        """Per-query aggregates: samples, last/mean/p50/p95 relative error."""
        out: dict[str, dict[str, float]] = {}
        for (query,), hist in self._error_hist.items():
            assert isinstance(hist, LatencyHistogram)
            if hist.count == 0:
                continue
            out[query] = {
                "samples": hist.count,
                "last": self._last_error.get(query, math.nan),
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p95": hist.percentile(95),
            }
        return out

    def summary(self) -> str:
        """Human-readable accuracy table (one line per tracked query)."""
        report = self.report()
        if not report:
            return "accuracy: no samples yet"
        width = max(len("query"), *(len(q) for q in report))
        lines = ["streaming relative error (estimate vs exact):"]
        lines.append(
            f"  {'query':<{width}}  {'samples':>8}  {'last':>9}  "
            f"{'mean':>9}  {'p50':>9}  {'p95':>9}"
        )
        for query in sorted(report):
            row = report[query]
            lines.append(
                f"  {query:<{width}}  {row['samples']:>8,}  "
                f"{row['last'] * 100:>8.3f}%  {row['mean'] * 100:>8.3f}%  "
                f"{row['p50'] * 100:>8.3f}%  {row['p95'] * 100:>8.3f}%"
            )
        return "\n".join(lines)

    def as_dict(self) -> Mapping[str, object]:
        """JSON-compatible snapshot (cadence, per-query aggregates)."""
        return {
            "every_ops": self.every_ops,
            "sampling_seconds": self._sample_time.value,
            "queries": self.report(),
        }

    def reset(self) -> None:
        """Zero the aggregates (the tracked-query configuration stays)."""
        self._error_hist.reset()
        self._samples.reset()
        self._sample_time.reset()
        self._last_error.clear()
        self._last_sampled_at = 0
