"""Observability for the streaming estimation engine.

``repro.obs`` makes the system measure in production exactly what the
paper measures in benchmarks: ingest/estimate counters and latency
distributions (:mod:`~repro.obs.metrics`), structured span events over a
bounded ring buffer (:mod:`~repro.obs.tracing`), online
estimate-vs-exact relative error (:mod:`~repro.obs.accuracy`), and
export paths — Prometheus text, JSONL snapshots, a live text dashboard
(:mod:`~repro.obs.exporters`), OTLP/JSON traces and metrics
(:mod:`~repro.obs.otel`) — all bundled per engine by
:class:`~repro.obs.telemetry.Telemetry`.

Quickstart::

    from repro import Domain, JoinQuery, StreamEngine
    from repro.obs import prometheus_text

    engine = StreamEngine()                      # telemetry on by default
    ...                                          # relations, queries, ingest
    tracker = engine.track_accuracy(every_ops=5000)
    print(engine.stats().summary())              # counters + latency
    print(tracker.summary())                     # streaming relative error
    print(prometheus_text(engine.telemetry.registry))   # /metrics payload
"""

from .accuracy import AccuracyTracker, relative_error_of
from .exporters import JsonlSnapshotWriter, prometheus_text, render_dashboard
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    RELATIVE_ERROR_BUCKETS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricFamily,
    MetricsRegistry,
    catalog_mismatches,
)
from .server import MetricsServer
from .telemetry import Telemetry
from .tracing import DEFAULT_TRACE_CAPACITY, SpanEvent, TraceContext, Tracer

__all__ = [
    "AccuracyTracker",
    "relative_error_of",
    "JsonlSnapshotWriter",
    "prometheus_text",
    "render_dashboard",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "catalog_mismatches",
    "DEFAULT_LATENCY_BUCKETS",
    "RELATIVE_ERROR_BUCKETS",
    "Telemetry",
    "SpanEvent",
    "TraceContext",
    "Tracer",
    "DEFAULT_TRACE_CAPACITY",
]
