"""Stdlib HTTP endpoint serving the Prometheus text exposition format.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer` in
a daemon thread: ``GET /metrics`` renders the registry via
:func:`repro.obs.exporters.prometheus_text` at request time (always
current, no snapshot cadence to tune), ``GET /healthz`` answers ``ok``
for liveness probes, anything else is 404.  The registry is supplied
either directly or as a zero-argument callable, so callers whose
registry identity changes (e.g. a sharded fleet re-merging per-shard
registries into a fresh one each cycle) can hand in a provider instead
of a stale reference.

Scrapes are read-only over plain-Python metric objects; the engine's
ingest path never blocks on a scrape.  Binding ``port=0`` picks a free
port (see :attr:`MetricsServer.port`), which keeps tests and parallel
experiment runs collision-free.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Union

from .exporters import prometheus_text
from .metrics import MetricsRegistry

__all__ = ["MetricsServer", "CONTENT_TYPE"]

#: Prometheus text exposition content type (version 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

RegistrySource = Union[MetricsRegistry, Callable[[], MetricsRegistry]]


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"  # narrowed for the attribute accesses below

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        """Same status/headers as GET, no body (probes use HEAD)."""
        self._handle(include_body=False)

    def _handle(self, include_body: bool) -> None:
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.server.render().encode("utf-8")
            self._respond(200, CONTENT_TYPE, body, include_body)
        elif path == "/healthz":
            self._respond(200, "text/plain; charset=utf-8", b"ok\n", include_body)
        else:
            self._respond(404, "text/plain; charset=utf-8", b"not found\n", include_body)

    def _respond(
        self, status: int, content_type: str, body: bytes, include_body: bool = True
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if include_body:
            self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], source: RegistrySource) -> None:
        super().__init__(address, _Handler)
        self._source = source

    def render(self) -> str:
        registry = self._source() if callable(self._source) else self._source
        return prometheus_text(registry)


class MetricsServer:
    """Serve ``/metrics`` for one registry (or registry provider).

    Usable as a context manager::

        with MetricsServer(engine.telemetry.registry, port=0) as server:
            print(f"scrape me at {server.url}")
            ...
    """

    def __init__(
        self,
        registry: RegistrySource,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _Server((host, port), registry)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._server.server_address[0])

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve in a daemon thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-metrics-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and join the serving thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
