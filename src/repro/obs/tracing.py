"""Structured span events over a bounded in-memory ring buffer.

The tracing layer answers "what just happened, in order, and how long did
it take" — the question counters cannot.  A :class:`Tracer` records
:class:`SpanEvent` objects (name, monotonic start, duration, op count,
free-form attributes) into a ``deque(maxlen=capacity)`` ring: constant
memory, oldest events dropped first, with a drop counter so consumers
know the window is partial.

Two recording styles serve the two hot-path shapes:

* ``with tracer.span("ingest_batch", relation="R1", count=1024): ...``
  wraps a region and measures it (used around the relation's vectorized
  batch apply), and
* ``tracer.emit("observer_update", seconds, ...)`` records a duration the
  caller already measured (used where the stats layer has timed the work
  anyway, so tracing adds no second clock read).

A disabled tracer records nothing; the engine goes one step further and
hands relations ``tracer = None`` so the hot path pays a single ``is
None`` check.

1-in-N probabilistic sampling (``sample_every=N``) cuts the cost of an
*enabled* tracer on per-tuple workloads: :meth:`Tracer.take` decides up
front whether the next hot-path span is recorded, so a sampled-out tuple
pays one integer decrement instead of two ``perf_counter`` reads plus an
event allocation.  Gaps between recorded events are drawn from the
geometric distribution with mean ``N`` (seeded, so runs are
reproducible); recorded durations are an unbiased sample of the
underlying population, and ``sampled_out`` accounting tells consumers
how much weight each recorded event represents.  ``sample_every=None``
(the default) records every span, byte-for-byte the pre-sampling
behavior.
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from time import perf_counter
from typing import Iterator

__all__ = ["SpanEvent", "Tracer", "DEFAULT_TRACE_CAPACITY"]

#: Default ring-buffer capacity (events).
DEFAULT_TRACE_CAPACITY = 4096


@dataclass(frozen=True)
class SpanEvent:
    """One finished span: what ran, when it started, how long it took."""

    #: Span name, e.g. ``"ingest_batch"`` / ``"observer_update"`` / ``"estimate"``.
    name: str
    #: ``time.perf_counter()`` at span start (monotonic; comparable within a process).
    start: float
    #: Wall-clock duration in seconds.
    duration: float
    #: Operations covered by the span (tuples in the batch, 1 for an estimate).
    count: int = 1
    #: Free-form string attributes (relation / method / query / kind ...).
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-compatible form (attrs flattened in)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "count": self.count,
            **self.attrs,
        }


class Tracer:
    """Bounded recorder of span events.

    ``capacity`` bounds memory; ``enabled=False`` turns every call into a
    no-op (the span context manager still runs, recording nothing).
    ``sample_every=N`` records roughly 1 in ``N`` spans (geometric gaps,
    seeded by ``sample_seed``); ``None`` records everything.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        enabled: bool = True,
        sample_every: int | None = None,
        sample_seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        if sample_every is not None and sample_every < 1:
            raise ValueError("sample_every must be >= 1 (or None to record everything)")
        self.capacity = capacity
        self.enabled = enabled
        self.sample_every = sample_every
        self._rng = Random(sample_seed)
        self._gap = 0
        self._sampled_out = 0
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._emitted = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def take(self) -> bool:
        """Decide whether the next hot-path span should be recorded.

        The sampled-out path is one integer decrement — no clock read, no
        allocation — which is what makes tracing affordable per tuple.
        Callers pair a ``True`` result with :meth:`record`; :meth:`span`
        and :meth:`emit` call this internally.
        """
        if not self.enabled:
            return False
        n = self.sample_every
        if n is None or n <= 1:
            return True
        if self._gap > 0:
            self._gap -= 1
            self._sampled_out += 1
            return False
        # Draw the number of events to skip before the next recorded one:
        # geometric with success probability 1/N, so the long-run rate is
        # exactly 1 in N without per-event randomness.
        u = 1.0 - self._rng.random()  # in (0, 1]; guards log(0)
        self._gap = int(math.log(u) / math.log(1.0 - 1.0 / n))
        return True

    @contextmanager
    def span(self, name: str, count: int = 1, **attrs) -> Iterator[None]:
        """Measure the wrapped region and record it as one event.

        The event is recorded even if the region raises, so failed batch
        applies still show up in the trace.  A sampled-out span skips the
        clock reads entirely.
        """
        if not self.take():
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            self.record(name, perf_counter() - start, count=count, start=start, **attrs)

    def emit(
        self,
        name: str,
        duration: float,
        count: int = 1,
        start: float | None = None,
        **attrs,
    ) -> None:
        """Record a span whose duration the caller measured already.

        Subject to sampling: with ``sample_every=N`` only ~1 in ``N``
        calls lands in the ring.  Callers that made their own
        :meth:`take` decision should use :meth:`record` instead.
        """
        if self.take():
            self.record(name, duration, count=count, start=start, **attrs)

    def record(
        self,
        name: str,
        duration: float,
        count: int = 1,
        start: float | None = None,
        **attrs,
    ) -> None:
        """Unconditionally record one span (the caller already sampled)."""
        if not self.enabled:
            return
        if start is None:
            start = perf_counter() - duration
        self._emitted += 1
        self._events.append(
            SpanEvent(name, start, duration, count, {k: str(v) for k, v in attrs.items()})
        )

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def emitted(self) -> int:
        """Total events ever recorded (including ones since evicted)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events evicted from the ring to make room for newer ones."""
        return self._emitted - len(self._events)

    @property
    def sampled_out(self) -> int:
        """Spans skipped by 1-in-N sampling (never measured or recorded)."""
        return self._sampled_out

    def events(self, name: str | None = None) -> list[SpanEvent]:
        """Buffered events oldest-first, optionally filtered by span name."""
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def tail(self, n: int = 10, name: str | None = None) -> list[SpanEvent]:
        """The most recent ``n`` (matching) events, oldest-first."""
        return self.events(name)[-n:]

    def clear(self) -> None:
        """Drop buffered events and zero the emitted/dropped accounting."""
        self._events.clear()
        self._emitted = 0
        self._sampled_out = 0
        self._gap = 0

    def snapshot(self) -> dict:
        """Summary counts plus the most recent few events (JSON-compatible)."""
        out = {
            "capacity": self.capacity,
            "buffered": len(self._events),
            "emitted": self._emitted,
            "dropped": self.dropped,
            "recent": [event.as_dict() for event in self.tail(5)],
        }
        if self.sample_every is not None:
            out["sample_every"] = self.sample_every
            out["sampled_out"] = self._sampled_out
        return out

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(buffered={len(self._events)}, emitted={self._emitted})"
