"""Structured span events over a bounded in-memory ring buffer.

The tracing layer answers "what just happened, in order, and how long did
it take" — the question counters cannot.  A :class:`Tracer` records
:class:`SpanEvent` objects (name, monotonic start, duration, op count,
free-form attributes) into a ``deque(maxlen=capacity)`` ring: constant
memory, oldest events dropped first, with a drop counter so consumers
know the window is partial.

Two recording styles serve the two hot-path shapes:

* ``with tracer.span("ingest_batch", relation="R1", count=1024): ...``
  wraps a region and measures it (used around the relation's vectorized
  batch apply), and
* ``tracer.emit("observer_update", seconds, ...)`` records a duration the
  caller already measured (used where the stats layer has timed the work
  anyway, so tracing adds no second clock read).

A disabled tracer records nothing; the engine goes one step further and
hands relations ``tracer = None`` so the hot path pays a single ``is
None`` check.

1-in-N probabilistic sampling (``sample_every=N``) cuts the cost of an
*enabled* tracer on per-tuple workloads: :meth:`Tracer.take` decides up
front whether the next hot-path span is recorded, so a sampled-out tuple
pays one integer decrement instead of two ``perf_counter`` reads plus an
event allocation.  Gaps between recorded events are drawn from the
geometric distribution with mean ``N`` (seeded, so runs are
reproducible); recorded durations are an unbiased sample of the
underlying population, and ``sampled_out`` accounting tells consumers
how much weight each recorded event represents.  ``sample_every=None``
(the default) records every span, byte-for-byte the pre-sampling
behavior.

Every recorded span carries W3C Trace Context identity: a 128-bit trace
id shared by everything recorded under one :class:`TraceContext`, a
fresh 64-bit span id, and the context's span id as the parent link.  Ids
come from ``os.urandom`` — not the sampling RNG — so forked process
shards never collide.  :meth:`Tracer.propagated_span` measures a region
*and* yields its ``traceparent`` header so remote workers
(:meth:`Tracer.adopt`) can parent their spans under it; that is the
whole distributed-tracing story, exported as OTLP by
:mod:`repro.obs.otel`.
"""

from __future__ import annotations

import math
import os
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from time import perf_counter
from typing import Iterator

__all__ = ["SpanEvent", "TraceContext", "Tracer", "DEFAULT_TRACE_CAPACITY"]

#: Default ring-buffer capacity (events).
DEFAULT_TRACE_CAPACITY = 4096


def _new_trace_id() -> str:
    """A non-zero 128-bit trace id as 32 lowercase hex chars."""
    trace_id = os.urandom(16).hex()
    while trace_id == "0" * 32:  # pragma: no cover - 2**-128 chance
        trace_id = os.urandom(16).hex()
    return trace_id


def _new_span_id() -> str:
    """A non-zero 64-bit span id as 16 lowercase hex chars."""
    span_id = os.urandom(8).hex()
    while span_id == "0" * 16:  # pragma: no cover - 2**-64 chance
        span_id = os.urandom(8).hex()
    return span_id


@dataclass(frozen=True)
class TraceContext:
    """W3C Trace Context: which trace we are in, and the current parent.

    ``trace_id`` is 32 lowercase hex chars (128 bits), ``span_id`` — the
    id new child spans parent under — is 16 (64 bits).  The wire form is
    the ``traceparent`` header, version ``00``:
    ``00-{trace_id}-{span_id}-{01|00}`` with the flag byte carrying the
    sampled bit.  Contexts are immutable; derive children with
    :meth:`child` and cross process boundaries via
    :meth:`to_traceparent` / :meth:`from_traceparent`.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self) -> None:
        if len(self.trace_id) != 32 or not _is_hex(self.trace_id) or self.trace_id == "0" * 32:
            raise ValueError(f"trace_id must be 32 lowercase hex chars, got {self.trace_id!r}")
        if len(self.span_id) != 16 or not _is_hex(self.span_id) or self.span_id == "0" * 16:
            raise ValueError(f"span_id must be 16 lowercase hex chars, got {self.span_id!r}")

    @classmethod
    def generate(cls) -> "TraceContext":
        """A fresh root context (new trace id, new span id)."""
        return cls(_new_trace_id(), _new_span_id())

    def child(self, span_id: str | None = None) -> "TraceContext":
        """Same trace, new current span (the fan-out primitive)."""
        return TraceContext(self.trace_id, span_id or _new_span_id(), self.sampled)

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header; raises ``ValueError`` if malformed."""
        parts = header.strip().lower().split("-")
        if len(parts) != 4:
            raise ValueError(f"traceparent must have 4 dash-separated fields: {header!r}")
        version, trace_id, span_id, flags = parts
        if version != "00":
            raise ValueError(f"unsupported traceparent version {version!r}")
        if len(flags) != 2 or not _is_hex(flags):
            raise ValueError(f"traceparent flags must be 2 hex chars: {flags!r}")
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 0x01))


def _is_hex(value: str) -> bool:
    return all(c in "0123456789abcdef" for c in value)


@dataclass(frozen=True)
class SpanEvent:
    """One finished span: what ran, when it started, how long it took."""

    #: Span name, e.g. ``"ingest_batch"`` / ``"observer_update"`` / ``"estimate"``.
    name: str
    #: ``time.perf_counter()`` at span start (monotonic; comparable within a process).
    start: float
    #: Wall-clock duration in seconds.
    duration: float
    #: Operations covered by the span (tuples in the batch, 1 for an estimate).
    count: int = 1
    #: Free-form string attributes (relation / method / query / kind ...).
    attrs: dict[str, str] = field(default_factory=dict)
    #: 128-bit trace id (32 hex chars) shared by every span of one trace.
    trace_id: str = ""
    #: 64-bit span id (16 hex chars) unique to this span.
    span_id: str = ""
    #: Span id of the parent span ("" for a root span).
    parent_span_id: str = ""

    def as_dict(self) -> dict[str, object]:
        """JSON-compatible form (attrs flattened in)."""
        out: dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "count": self.count,
            **self.attrs,
        }
        if self.span_id:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            if self.parent_span_id:
                out["parent_span_id"] = self.parent_span_id
        return out


class Tracer:
    """Bounded recorder of span events.

    ``capacity`` bounds memory; ``enabled=False`` turns every call into a
    no-op (the span context manager still runs, recording nothing).
    ``sample_every=N`` records roughly 1 in ``N`` spans (geometric gaps,
    seeded by ``sample_seed``); ``None`` records everything.

    Every tracer owns a :class:`TraceContext`; recorded spans take their
    trace id from it and parent under its span id.  ``context=None``
    generates a fresh root context, so a standalone engine's spans form
    one trace per tracer; a sharded worker calls :meth:`adopt` with the
    coordinator's ``traceparent`` so its spans join the fleet trace.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        enabled: bool = True,
        sample_every: int | None = None,
        sample_seed: int = 0,
        context: TraceContext | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        if sample_every is not None and sample_every < 1:
            raise ValueError("sample_every must be >= 1 (or None to record everything)")
        self.capacity = capacity
        self.enabled = enabled
        self.sample_every = sample_every
        self.context = context if context is not None else TraceContext.generate()
        self._rng = Random(sample_seed)
        self._gap = 0
        self._sampled_out = 0
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self._drained = 0

    def adopt(self, traceparent: str | None) -> None:
        """Join the trace named by a ``traceparent`` header.

        Subsequent spans carry its trace id and parent under its span id.
        ``None`` is a no-op so callers can pass an optional header
        through unconditionally; a malformed header raises ``ValueError``
        (propagation bugs should be loud, not silently re-rooted).
        """
        if traceparent is not None:
            # Engine-thread confined: adopt() runs at batch start on the
            # one thread that owns this tracer.
            self.context = TraceContext.from_traceparent(traceparent)  # repro: noqa[REP008]

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def take(self) -> bool:
        """Decide whether the next hot-path span should be recorded.

        The sampled-out path is one integer decrement — no clock read, no
        allocation — which is what makes tracing affordable per tuple.
        Callers pair a ``True`` result with :meth:`record`; :meth:`span`
        and :meth:`emit` call this internally.
        """
        if not self.enabled:
            return False
        n = self.sample_every
        if n is None or n <= 1:
            return True
        if self._gap > 0:
            # Lock-free by design: one tracer per engine thread; a lock
            # here would tax every sampled-out tuple (PR 6 overhead gate).
            self._gap -= 1  # repro: noqa[REP008]
            self._sampled_out += 1  # repro: noqa[REP008]
            return False
        # Draw the number of events to skip before the next recorded one:
        # geometric with success probability 1/N, so the long-run rate is
        # exactly 1 in N without per-event randomness.
        u = 1.0 - self._rng.random()  # in (0, 1]; guards log(0)
        # Single-writer geometric-gap state; see take() docstring.
        self._gap = int(math.log(u) / math.log(1.0 - 1.0 / n))  # repro: noqa[REP008]
        return True

    @contextmanager
    def span(self, name: str, count: int = 1, **attrs: object) -> Iterator[None]:
        """Measure the wrapped region and record it as one event.

        The event is recorded even if the region raises, so failed batch
        applies still show up in the trace.  A sampled-out span skips the
        clock reads entirely.
        """
        if not self.take():
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            self.record(name, perf_counter() - start, count=count, start=start, **attrs)

    def emit(
        self,
        name: str,
        duration: float,
        count: int = 1,
        start: float | None = None,
        **attrs: object,
    ) -> None:
        """Record a span whose duration the caller measured already.

        Subject to sampling: with ``sample_every=N`` only ~1 in ``N``
        calls lands in the ring.  Callers that made their own
        :meth:`take` decision should use :meth:`record` instead.
        """
        if self.take():
            self.record(name, duration, count=count, start=start, **attrs)

    @contextmanager
    def propagated_span(
        self, name: str, count: int = 1, **attrs: object
    ) -> Iterator[str | None]:
        """Measure the region as one span and yield its ``traceparent``.

        The span id is generated up front so remote workers started
        inside the region can :meth:`adopt` the yielded header and parent
        their spans under this one — the fan-out half of distributed
        tracing.  Yields ``None`` when disabled or sampled out (callers
        pass it through; workers treat it as "keep your current trace").
        """
        if not self.take():
            yield None
            return
        span_id = _new_span_id()
        traceparent = self.context.child(span_id).to_traceparent()
        start = perf_counter()
        try:
            yield traceparent
        finally:
            self.record(
                name, perf_counter() - start, count=count, start=start,
                span_id=span_id, **attrs,
            )

    def record(
        self,
        name: str,
        duration: float,
        count: int = 1,
        start: float | None = None,
        span_id: str | None = None,
        **attrs: object,
    ) -> None:
        """Unconditionally record one span (the caller already sampled).

        ``span_id`` lets :meth:`propagated_span` pre-announce the id it
        handed to remote children; omitted, a fresh one is generated.
        """
        if not self.enabled:
            return
        if start is None:
            start = perf_counter() - duration
        context = self.context
        # Engine-thread confined hot-path counter (lock-free by design).
        self._emitted += 1  # repro: noqa[REP008]
        self._events.append(
            SpanEvent(
                name, start, duration, count,
                {k: str(v) for k, v in attrs.items()},
                trace_id=context.trace_id,
                span_id=span_id if span_id is not None else _new_span_id(),
                parent_span_id=context.span_id,
            )
        )

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def emitted(self) -> int:
        """Total events ever recorded (including ones since evicted)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events evicted from the ring to make room for newer ones.

        Events handed out by :meth:`drain` were delivered, not dropped,
        so they are excluded.
        """
        return self._emitted - self._drained - len(self._events)

    @property
    def sampled_out(self) -> int:
        """Spans skipped by 1-in-N sampling (never measured or recorded)."""
        return self._sampled_out

    def events(self, name: str | None = None) -> list[SpanEvent]:
        """Buffered events oldest-first, optionally filtered by span name."""
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def tail(self, n: int = 10, name: str | None = None) -> list[SpanEvent]:
        """The most recent ``n`` (matching) events, oldest-first."""
        return self.events(name)[-n:]

    def drain(self) -> list[SpanEvent]:
        """Hand over buffered events (oldest-first) and clear the ring.

        The exporter's read primitive: each call returns only events
        recorded since the previous drain, so periodic pushes never
        re-export a span.  Drained events count as delivered in the
        :attr:`dropped` accounting.
        """
        events = list(self._events)
        self._events.clear()
        # drain() is called by the exporter on the engine's cadence, not
        # concurrently with record(); counter stays lock-free.
        self._drained += len(events)  # repro: noqa[REP008]
        return events

    def clear(self) -> None:
        """Drop buffered events and zero the emitted/dropped accounting."""
        self._events.clear()
        # Reset path, engine-thread confined like the counters above.
        self._emitted = 0  # repro: noqa[REP008]
        self._sampled_out = 0  # repro: noqa[REP008]
        self._gap = 0  # repro: noqa[REP008]
        self._drained = 0  # repro: noqa[REP008]

    def snapshot(self) -> dict[str, object]:
        """Summary counts plus the most recent few events (JSON-compatible)."""
        out: dict[str, object] = {
            "capacity": self.capacity,
            "buffered": len(self._events),
            "emitted": self._emitted,
            "dropped": self.dropped,
            "recent": [event.as_dict() for event in self.tail(5)],
        }
        if self.sample_every is not None:
            out["sample_every"] = self.sample_every
            out["sampled_out"] = self._sampled_out
        return out

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(buffered={len(self._events)}, emitted={self._emitted})"
