"""Structured span events over a bounded in-memory ring buffer.

The tracing layer answers "what just happened, in order, and how long did
it take" — the question counters cannot.  A :class:`Tracer` records
:class:`SpanEvent` objects (name, monotonic start, duration, op count,
free-form attributes) into a ``deque(maxlen=capacity)`` ring: constant
memory, oldest events dropped first, with a drop counter so consumers
know the window is partial.

Two recording styles serve the two hot-path shapes:

* ``with tracer.span("ingest_batch", relation="R1", count=1024): ...``
  wraps a region and measures it (used around the relation's vectorized
  batch apply), and
* ``tracer.emit("observer_update", seconds, ...)`` records a duration the
  caller already measured (used where the stats layer has timed the work
  anyway, so tracing adds no second clock read).

A disabled tracer records nothing; the engine goes one step further and
hands relations ``tracer = None`` so the hot path pays a single ``is
None`` check.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

__all__ = ["SpanEvent", "Tracer", "DEFAULT_TRACE_CAPACITY"]

#: Default ring-buffer capacity (events).
DEFAULT_TRACE_CAPACITY = 4096


@dataclass(frozen=True)
class SpanEvent:
    """One finished span: what ran, when it started, how long it took."""

    #: Span name, e.g. ``"ingest_batch"`` / ``"observer_update"`` / ``"estimate"``.
    name: str
    #: ``time.perf_counter()`` at span start (monotonic; comparable within a process).
    start: float
    #: Wall-clock duration in seconds.
    duration: float
    #: Operations covered by the span (tuples in the batch, 1 for an estimate).
    count: int = 1
    #: Free-form string attributes (relation / method / query / kind ...).
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-compatible form (attrs flattened in)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "count": self.count,
            **self.attrs,
        }


class Tracer:
    """Bounded recorder of span events.

    ``capacity`` bounds memory; ``enabled=False`` turns every call into a
    no-op (the span context manager still runs, recording nothing).
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._emitted = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    @contextmanager
    def span(self, name: str, count: int = 1, **attrs) -> Iterator[None]:
        """Measure the wrapped region and record it as one event.

        The event is recorded even if the region raises, so failed batch
        applies still show up in the trace.
        """
        if not self.enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            self.emit(name, perf_counter() - start, count=count, start=start, **attrs)

    def emit(
        self,
        name: str,
        duration: float,
        count: int = 1,
        start: float | None = None,
        **attrs,
    ) -> None:
        """Record a span whose duration the caller measured already."""
        if not self.enabled:
            return
        if start is None:
            start = perf_counter() - duration
        self._emitted += 1
        self._events.append(
            SpanEvent(name, start, duration, count, {k: str(v) for k, v in attrs.items()})
        )

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def emitted(self) -> int:
        """Total events ever recorded (including ones since evicted)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events evicted from the ring to make room for newer ones."""
        return self._emitted - len(self._events)

    def events(self, name: str | None = None) -> list[SpanEvent]:
        """Buffered events oldest-first, optionally filtered by span name."""
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def tail(self, n: int = 10, name: str | None = None) -> list[SpanEvent]:
        """The most recent ``n`` (matching) events, oldest-first."""
        return self.events(name)[-n:]

    def clear(self) -> None:
        """Drop buffered events and zero the emitted/dropped accounting."""
        self._events.clear()
        self._emitted = 0

    def snapshot(self) -> dict:
        """Summary counts plus the most recent few events (JSON-compatible)."""
        return {
            "capacity": self.capacity,
            "buffered": len(self._events),
            "emitted": self._emitted,
            "dropped": self.dropped,
            "recent": [event.as_dict() for event in self.tail(5)],
        }

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(buffered={len(self._events)}, emitted={self._emitted})"
