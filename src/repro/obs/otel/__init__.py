"""OpenTelemetry-compatible export for repro.obs — no hard dependency.

The engine's spans and metrics speak OTLP without installing anything:
:mod:`~repro.obs.otel.encode` maps them onto the OTLP/JSON data model
with the standard library alone, :mod:`~repro.obs.otel.export` ships the
payloads (HTTP collector or JSON-lines file/stdout) on a periodic push
loop with retry/backoff and drop accounting, and
:mod:`~repro.obs.otel.backend` upgrades to the real
``opentelemetry-sdk`` when it happens to be installed (the
``repro.fastpath`` gated-import idiom; override with ``REPRO_OTEL``).

Combined with :class:`~repro.obs.tracing.TraceContext` propagation in
``repro.sharding``, a process-sharded run exports per-shard spans that
link under one coordinator trace — one query, one trace, any collector.

Quickstart (collector-less)::

    from repro.obs.otel import OtelPushLoop, OtlpJsonFileExporter

    engine = StreamEngine()            # telemetry on by default
    tracer = engine.telemetry.tracer
    loop = OtelPushLoop(
        OtlpJsonFileExporter("spans.otlp.jsonl"),
        metrics=engine.telemetry.registry,
        spans=lambda: [({}, tracer.drain())],
        every_s=5.0,
    )
    ...ingest...
    loop.push_now()                    # or loop.start()/stop()

The ``repro-experiments monitor`` subcommand wires this up via
``--otlp-endpoint`` / ``--otlp-file``.
"""

from .backend import (
    BACKENDS,
    HAVE_SDK,
    available_backends,
    backend_name,
    describe,
    register_backend_gauge,
    set_backend,
)
from .encode import (
    SCOPE_NAME,
    default_resource,
    encode_metrics,
    encode_span_groups,
    encode_spans,
    epoch_anchor_ns,
    metrics_from_otlp,
    spans_from_otlp,
    validate_metrics_payload,
    validate_traces_payload,
)
from .export import (
    OtelPushLoop,
    OtlpExporter,
    OtlpHttpExporter,
    OtlpJsonFileExporter,
    SpanSource,
)

__all__ = [
    "BACKENDS",
    "HAVE_SDK",
    "available_backends",
    "backend_name",
    "describe",
    "register_backend_gauge",
    "set_backend",
    "SCOPE_NAME",
    "default_resource",
    "encode_metrics",
    "encode_span_groups",
    "encode_spans",
    "epoch_anchor_ns",
    "metrics_from_otlp",
    "spans_from_otlp",
    "validate_metrics_payload",
    "validate_traces_payload",
    "OtelPushLoop",
    "OtlpExporter",
    "OtlpHttpExporter",
    "OtlpJsonFileExporter",
    "SpanSource",
]
