"""Pure-stdlib OTLP/JSON encoding of repro.obs spans and metrics.

This module maps the in-memory observability model onto the OpenTelemetry
protocol's JSON representation (the proto3 JSON mapping of
``opentelemetry/proto/trace/v1`` and ``metrics/v1``) with nothing beyond
the standard library:

* :func:`encode_spans` / :func:`encode_span_groups` turn
  :class:`~repro.obs.tracing.SpanEvent` batches into a ``resourceSpans``
  payload — trace/span/parent ids verbatim, monotonic timestamps mapped
  onto the epoch nanosecond clock via :func:`epoch_anchor_ns`.
* :func:`encode_metrics` turns a
  :class:`~repro.obs.metrics.MetricsRegistry` into a ``resourceMetrics``
  payload: counters as cumulative monotonic ``sum``, gauges as ``gauge``,
  :class:`~repro.obs.metrics.LatencyHistogram` as ``histogram`` with
  explicit bounds; families become one data point per label combination.
* :func:`spans_from_otlp` / :func:`metrics_from_otlp` decode such
  payloads back, and :func:`validate_traces_payload` /
  :func:`validate_metrics_payload` check conformance to the data model —
  together they make the encoders round-trip-testable without an
  OpenTelemetry installation.

Per the proto3 JSON mapping, 64-bit integers (timestamps, counts, bucket
counts) are encoded as decimal *strings* and ids as lowercase hex
strings; both encoders follow that convention exactly so a stock OTLP
collector accepts the output.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

from ..metrics import Counter, Gauge, LatencyHistogram, MetricFamily, MetricsRegistry
from ..tracing import SpanEvent, TraceContext

__all__ = [
    "SCOPE_NAME",
    "default_resource",
    "epoch_anchor_ns",
    "encode_spans",
    "encode_span_groups",
    "encode_metrics",
    "spans_from_otlp",
    "metrics_from_otlp",
    "validate_traces_payload",
    "validate_metrics_payload",
]

#: Instrumentation-scope name stamped on every exported payload.
SCOPE_NAME = "repro.obs"

#: ``AggregationTemporality.CUMULATIVE`` — the only temporality the
#: registry produces (counters and histograms accumulate since start).
_CUMULATIVE = 2

#: ``SpanKind.INTERNAL`` — every engine span is in-process work.
_SPAN_KIND_INTERNAL = 1

#: Epoch-nanosecond start time stamped on cumulative metric points.
_PROCESS_START_NS = time.time_ns()


def _version() -> str:
    # Imported lazily: ``repro/__init__`` imports the obs package while
    # initializing, so a module-level ``from repro import __version__``
    # here would be circular.
    from repro import __version__

    return str(__version__)


def _scope() -> dict[str, Any]:
    return {"name": SCOPE_NAME, "version": _version()}


def default_resource() -> dict[str, object]:
    """Base resource attributes shared by every exported span and metric."""
    return {
        "service.name": "repro",
        "service.version": _version(),
        "telemetry.sdk.name": SCOPE_NAME,
        "telemetry.sdk.language": "python",
    }


def epoch_anchor_ns() -> int:
    """Offset mapping ``perf_counter()`` seconds onto epoch nanoseconds.

    ``perf_counter`` reads ``CLOCK_MONOTONIC`` (QPC on Windows), whose
    origin is per-*host*, not per-process — so one anchor computed in the
    coordinator is valid for span timestamps recorded by every forked
    shard worker on the machine.
    """
    return time.time_ns() - time.perf_counter_ns()


def _any_value(value: object) -> dict[str, Any]:
    """One OTLP ``AnyValue``: exactly one typed field set."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(mapping: Mapping[str, object]) -> list[dict[str, Any]]:
    return [{"key": key, "value": _any_value(value)} for key, value in sorted(mapping.items())]


# --------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------- #


def _encode_span(event: SpanEvent, anchor_ns: int) -> dict[str, Any]:
    start_ns = anchor_ns + int(event.start * 1e9)
    end_ns = start_ns + max(0, int(event.duration * 1e9))
    if event.span_id:
        trace_id, span_id, parent = event.trace_id, event.span_id, event.parent_span_id
    else:
        # Pre-1.7.0 events carry no identity; mint one so the payload
        # still validates (such spans are roots of a synthetic trace).
        generated = TraceContext.generate()
        trace_id, span_id, parent = generated.trace_id, generated.span_id, ""
    attrs: dict[str, object] = dict(event.attrs)
    attrs["count"] = event.count
    span: dict[str, Any] = {
        "traceId": trace_id,
        "spanId": span_id,
        "name": event.name,
        "kind": _SPAN_KIND_INTERNAL,
        "startTimeUnixNano": str(start_ns),
        "endTimeUnixNano": str(end_ns),
        "attributes": _attributes(attrs),
    }
    if parent:
        span["parentSpanId"] = parent
    return span


def encode_span_groups(
    groups: Iterable[tuple[Mapping[str, object], Sequence[SpanEvent]]],
    base_resource: Mapping[str, object] | None = None,
    anchor_ns: int | None = None,
) -> dict[str, Any]:
    """Encode ``(resource attributes, events)`` groups as ``resourceSpans``.

    Each group becomes one ``resourceSpans`` entry whose resource merges
    ``base_resource`` (default :func:`default_resource`) with the group's
    own attributes — the fleet shape: one group per shard, ``shard=N``
    distinguishing them.  Groups with no events are omitted.
    """
    anchor = epoch_anchor_ns() if anchor_ns is None else anchor_ns
    base = default_resource() if base_resource is None else dict(base_resource)
    resource_spans: list[dict[str, Any]] = []
    for extra, events in groups:
        if not events:
            continue
        resource_spans.append(
            {
                "resource": {"attributes": _attributes({**base, **extra})},
                "scopeSpans": [
                    {
                        "scope": _scope(),
                        "spans": [_encode_span(event, anchor) for event in events],
                    }
                ],
            }
        )
    return {"resourceSpans": resource_spans}


def encode_spans(
    events: Sequence[SpanEvent],
    resource: Mapping[str, object] | None = None,
    anchor_ns: int | None = None,
) -> dict[str, Any]:
    """Encode one batch of events under one resource (single-engine shape)."""
    return encode_span_groups([(dict(resource or {}), events)], anchor_ns=anchor_ns)


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #


def _number_point(
    value: float, attrs: Mapping[str, str], start_ns: int, now_ns: int
) -> dict[str, Any]:
    point: dict[str, Any] = {
        "startTimeUnixNano": str(start_ns),
        "timeUnixNano": str(now_ns),
    }
    if attrs:
        point["attributes"] = _attributes(attrs)
    if float(value).is_integer():
        point["asInt"] = str(int(value))
    else:
        point["asDouble"] = float(value)
    return point


def _histogram_point(
    hist: LatencyHistogram, attrs: Mapping[str, str], start_ns: int, now_ns: int
) -> dict[str, Any]:
    point: dict[str, Any] = {
        "startTimeUnixNano": str(start_ns),
        "timeUnixNano": str(now_ns),
        "count": str(hist.count),
        "sum": hist.sum,
        "bucketCounts": [str(c) for c in hist.bucket_counts],
        "explicitBounds": list(hist.bounds),
    }
    if attrs:
        point["attributes"] = _attributes(attrs)
    if hist.count:
        point["min"] = hist.min
        point["max"] = hist.max
    return point


def _metric_children(
    metric: object,
) -> tuple[str, str, list[tuple[dict[str, str], object]]]:
    """Flatten a metric or family to ``(kind, help, [(attrs, child)])``."""
    if isinstance(metric, MetricFamily):
        children: list[tuple[dict[str, str], object]] = [
            (dict(zip(metric.labelnames, values)), child) for values, child in metric.items()
        ]
        return metric.kind, metric.help, children
    kind = getattr(metric, "kind", "")
    help_text = getattr(metric, "help", "")
    return str(kind), str(help_text), [({}, metric)]


def _encode_metric(
    name: str, metric: object, start_ns: int, now_ns: int
) -> dict[str, Any] | None:
    kind, help_text, children = _metric_children(metric)
    out: dict[str, Any] = {"name": name}
    if help_text:
        out["description"] = help_text
    if kind == "histogram":
        points: list[dict[str, Any]] = [
            _histogram_point(child, attrs, start_ns, now_ns)
            for attrs, child in children
            if isinstance(child, LatencyHistogram)
        ]
        if not points:
            return None
        out["histogram"] = {"aggregationTemporality": _CUMULATIVE, "dataPoints": points}
        return out
    points = [
        _number_point(child.value, attrs, start_ns, now_ns)
        for attrs, child in children
        if isinstance(child, (Counter, Gauge))
    ]
    if not points:
        return None
    if kind == "counter":
        out["sum"] = {
            "aggregationTemporality": _CUMULATIVE,
            "isMonotonic": True,
            "dataPoints": points,
        }
    else:
        out["gauge"] = {"dataPoints": points}
    return out


def encode_metrics(
    registry: MetricsRegistry,
    resource: Mapping[str, object] | None = None,
    start_ns: int | None = None,
    now_ns: int | None = None,
) -> dict[str, Any]:
    """Encode every registry family as one ``resourceMetrics`` payload.

    Counters map to cumulative monotonic sums, gauges to gauges,
    histograms to explicit-bounds histogram points; a labelled family
    contributes one data point per label combination, the label pairs as
    point attributes.  Families with no children yet are skipped (a data
    point requires a value).
    """
    now = time.time_ns() if now_ns is None else now_ns
    start = _PROCESS_START_NS if start_ns is None else start_ns
    encoded = [
        _encode_metric(name, metric, start, now) for name, metric in registry.collect()
    ]
    metrics = [m for m in encoded if m is not None]
    base = default_resource() if resource is None else dict(resource)
    return {
        "resourceMetrics": [
            {
                "resource": {"attributes": _attributes(base)},
                "scopeMetrics": [{"scope": _scope(), "metrics": metrics}],
            }
        ]
    }


# --------------------------------------------------------------------- #
# decoding (round-trip support)
# --------------------------------------------------------------------- #


def _attrs_to_dict(attributes: Iterable[Mapping[str, Any]]) -> dict[str, object]:
    out: dict[str, object] = {}
    for entry in attributes:
        value = entry["value"]
        if "stringValue" in value:
            out[entry["key"]] = value["stringValue"]
        elif "boolValue" in value:
            out[entry["key"]] = bool(value["boolValue"])
        elif "intValue" in value:
            out[entry["key"]] = int(value["intValue"])
        else:
            out[entry["key"]] = float(value["doubleValue"])
    return out


def spans_from_otlp(
    payload: Mapping[str, Any], anchor_ns: int = 0
) -> list[tuple[dict[str, object], SpanEvent]]:
    """Decode a ``resourceSpans`` payload to ``(resource attrs, event)`` pairs.

    Passing the ``anchor_ns`` used at encode time maps timestamps back
    onto the original ``perf_counter`` clock, so a decode of an encode
    reproduces the source events up to nanosecond quantization.
    """
    out: list[tuple[dict[str, object], SpanEvent]] = []
    for resource_spans in payload.get("resourceSpans", []):
        resource = _attrs_to_dict(resource_spans.get("resource", {}).get("attributes", []))
        for scope_spans in resource_spans.get("scopeSpans", []):
            for span in scope_spans.get("spans", []):
                attrs = _attrs_to_dict(span.get("attributes", []))
                count = attrs.pop("count", 1)
                start_ns = int(span["startTimeUnixNano"])
                end_ns = int(span["endTimeUnixNano"])
                event = SpanEvent(
                    name=span["name"],
                    start=(start_ns - anchor_ns) / 1e9,
                    duration=(end_ns - start_ns) / 1e9,
                    count=int(count) if isinstance(count, (int, str)) else 1,
                    attrs={k: str(v) for k, v in attrs.items()},
                    trace_id=span["traceId"],
                    span_id=span["spanId"],
                    parent_span_id=span.get("parentSpanId", ""),
                )
                out.append((resource, event))
    return out


def metrics_from_otlp(payload: Mapping[str, Any]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from a ``resourceMetrics`` payload.

    Labelled families come back with label names in sorted order (OTLP
    points carry attribute *pairs*, not the registry's declaration
    order); values, bucket layouts, and counts round-trip exactly.
    """
    registry = MetricsRegistry()
    for resource_metrics in payload.get("resourceMetrics", []):
        for scope_metrics in resource_metrics.get("scopeMetrics", []):
            for metric in scope_metrics.get("metrics", []):
                _decode_metric(registry, metric)
    return registry


def _decode_metric(registry: MetricsRegistry, metric: Mapping[str, Any]) -> None:
    name = metric["name"]
    description = metric.get("description", "")
    if "sum" in metric:
        for point in metric["sum"]["dataPoints"]:
            attrs = _attrs_to_dict(point.get("attributes", []))
            labelnames = tuple(sorted(str(k) for k in attrs))
            counter = registry.counter(name, description, labelnames=labelnames)
            child = (
                counter.labels(**{str(k): v for k, v in attrs.items()})
                if isinstance(counter, MetricFamily)
                else counter
            )
            assert isinstance(child, Counter)
            child.inc(_point_value(point))
    elif "gauge" in metric:
        for point in metric["gauge"]["dataPoints"]:
            attrs = _attrs_to_dict(point.get("attributes", []))
            labelnames = tuple(sorted(str(k) for k in attrs))
            gauge = registry.gauge(name, description, labelnames=labelnames)
            child = (
                gauge.labels(**{str(k): v for k, v in attrs.items()})
                if isinstance(gauge, MetricFamily)
                else gauge
            )
            assert isinstance(child, Gauge)
            child.set(_point_value(point))
    elif "histogram" in metric:
        for point in metric["histogram"]["dataPoints"]:
            attrs = _attrs_to_dict(point.get("attributes", []))
            labelnames = tuple(sorted(str(k) for k in attrs))
            bounds = [float(b) for b in point.get("explicitBounds", [])]
            hist = registry.histogram(name, description, labelnames=labelnames, buckets=bounds)
            child = (
                hist.labels(**{str(k): v for k, v in attrs.items()})
                if isinstance(hist, MetricFamily)
                else hist
            )
            assert isinstance(child, LatencyHistogram)
            counts = [int(c) for c in point.get("bucketCounts", [])]
            for i, bucket_count in enumerate(counts):
                child.bucket_counts[i] += bucket_count
            child._count += int(point["count"])
            child._sum += float(point.get("sum", 0.0))
            if "min" in point:
                child._min = min(child._min, float(point["min"]))
            if "max" in point:
                child._max = max(child._max, float(point["max"]))


def _point_value(point: Mapping[str, Any]) -> float:
    if "asInt" in point:
        return float(int(point["asInt"]))
    return float(point["asDouble"])


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #


def _check_attributes(owner: str, attributes: object, problems: list[str]) -> None:
    if not isinstance(attributes, list):
        problems.append(f"{owner}: attributes must be a list")
        return
    for entry in attributes:
        if not isinstance(entry, Mapping) or "key" not in entry or "value" not in entry:
            problems.append(f"{owner}: attribute entries need 'key' and 'value'")
            continue
        value = entry["value"]
        if not isinstance(value, Mapping):
            problems.append(f"{owner}: attribute {entry['key']!r} value must be an AnyValue")
            continue
        typed = {"stringValue", "boolValue", "intValue", "doubleValue"} & set(value)
        if len(typed) != 1:
            problems.append(
                f"{owner}: attribute {entry['key']!r} must set exactly one AnyValue field"
            )


def _is_hex_id(value: object, width: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == width
        and all(c in "0123456789abcdef" for c in value)
        and value != "0" * width
    )


def _is_uint_string(value: object) -> bool:
    return isinstance(value, str) and value.isdigit()


def validate_traces_payload(payload: Mapping[str, Any]) -> list[str]:
    """Problems that would make an OTLP collector reject the payload.

    Checks the proto3 JSON conventions the encoder promises: hex span
    identity of the right widths, string-encoded uint64 timestamps in
    order, well-formed attribute lists.  Empty list means conformant.
    """
    problems: list[str] = []
    resource_spans = payload.get("resourceSpans")
    if not isinstance(resource_spans, list):
        return ["payload must have a 'resourceSpans' list"]
    for i, entry in enumerate(resource_spans):
        where = f"resourceSpans[{i}]"
        _check_attributes(where, entry.get("resource", {}).get("attributes", []), problems)
        scope_spans = entry.get("scopeSpans")
        if not isinstance(scope_spans, list) or not scope_spans:
            problems.append(f"{where}: needs a non-empty 'scopeSpans' list")
            continue
        for scope_entry in scope_spans:
            for j, span in enumerate(scope_entry.get("spans", [])):
                owner = f"{where}.spans[{j}]"
                if not span.get("name"):
                    problems.append(f"{owner}: span name must be non-empty")
                if not _is_hex_id(span.get("traceId"), 32):
                    problems.append(f"{owner}: traceId must be 32 hex chars, non-zero")
                if not _is_hex_id(span.get("spanId"), 16):
                    problems.append(f"{owner}: spanId must be 16 hex chars, non-zero")
                parent = span.get("parentSpanId", "")
                if parent and not _is_hex_id(parent, 16):
                    problems.append(f"{owner}: parentSpanId must be 16 hex chars when set")
                start, end = span.get("startTimeUnixNano"), span.get("endTimeUnixNano")
                if not (_is_uint_string(start) and _is_uint_string(end)):
                    problems.append(f"{owner}: span times must be uint64-as-string")
                elif int(start) > int(end):
                    problems.append(f"{owner}: startTimeUnixNano after endTimeUnixNano")
                _check_attributes(owner, span.get("attributes", []), problems)
    return problems


def _validate_number_points(owner: str, points: object, problems: list[str]) -> None:
    if not isinstance(points, list) or not points:
        problems.append(f"{owner}: needs a non-empty 'dataPoints' list")
        return
    for k, point in enumerate(points):
        where = f"{owner}.dataPoints[{k}]"
        typed = {"asInt", "asDouble"} & set(point)
        if len(typed) != 1:
            problems.append(f"{where}: must set exactly one of asInt/asDouble")
        elif "asInt" in point and not _is_int_string(point["asInt"]):
            problems.append(f"{where}: asInt must be an int64-as-string")
        if not _is_uint_string(point.get("timeUnixNano")):
            problems.append(f"{where}: timeUnixNano must be uint64-as-string")
        _check_attributes(where, point.get("attributes", []), problems)


def _is_int_string(value: object) -> bool:
    return isinstance(value, str) and (value.lstrip("-").isdigit())


def validate_metrics_payload(payload: Mapping[str, Any]) -> list[str]:
    """Problems that would make an OTLP collector reject the payload.

    Checks each metric declares exactly one data shape, sums are
    cumulative and monotonic (all the registry produces), and histogram
    points keep ``len(bucketCounts) == len(explicitBounds) + 1`` with
    bucket counts summing to ``count``.  Empty list means conformant.
    """
    problems: list[str] = []
    resource_metrics = payload.get("resourceMetrics")
    if not isinstance(resource_metrics, list):
        return ["payload must have a 'resourceMetrics' list"]
    for i, entry in enumerate(resource_metrics):
        where = f"resourceMetrics[{i}]"
        _check_attributes(where, entry.get("resource", {}).get("attributes", []), problems)
        for scope_entry in entry.get("scopeMetrics", []):
            for metric in scope_entry.get("metrics", []):
                name = metric.get("name") or "<unnamed>"
                owner = f"{where}.{name}"
                if not metric.get("name"):
                    problems.append(f"{owner}: metric name must be non-empty")
                shapes = {"sum", "gauge", "histogram"} & set(metric)
                if len(shapes) != 1:
                    problems.append(f"{owner}: must set exactly one of sum/gauge/histogram")
                    continue
                if "sum" in metric:
                    if metric["sum"].get("aggregationTemporality") != _CUMULATIVE:
                        problems.append(f"{owner}: sums must be cumulative")
                    if metric["sum"].get("isMonotonic") is not True:
                        problems.append(f"{owner}: counter sums must be monotonic")
                    _validate_number_points(owner, metric["sum"].get("dataPoints"), problems)
                elif "gauge" in metric:
                    _validate_number_points(owner, metric["gauge"].get("dataPoints"), problems)
                else:
                    _validate_histogram_points(
                        owner, metric["histogram"], problems
                    )
    return problems


def _validate_histogram_points(
    owner: str, histogram: Mapping[str, Any], problems: list[str]
) -> None:
    if histogram.get("aggregationTemporality") != _CUMULATIVE:
        problems.append(f"{owner}: histograms must be cumulative")
    points = histogram.get("dataPoints")
    if not isinstance(points, list) or not points:
        problems.append(f"{owner}: needs a non-empty 'dataPoints' list")
        return
    for k, point in enumerate(points):
        where = f"{owner}.dataPoints[{k}]"
        counts = point.get("bucketCounts", [])
        bounds = point.get("explicitBounds", [])
        if not all(_is_uint_string(c) for c in counts):
            problems.append(f"{where}: bucketCounts must be uint64-as-string")
            continue
        if len(counts) != len(bounds) + 1:
            problems.append(
                f"{where}: len(bucketCounts) must be len(explicitBounds) + 1 "
                f"({len(counts)} vs {len(bounds)} bounds)"
            )
        if list(bounds) != sorted(float(b) for b in bounds):
            problems.append(f"{where}: explicitBounds must be sorted ascending")
        if not _is_uint_string(point.get("count")):
            problems.append(f"{where}: count must be uint64-as-string")
        elif sum(int(c) for c in counts) != int(point["count"]):  # repro: noqa[REP004] exact int compare
            problems.append(f"{where}: bucketCounts must sum to count")
        if not _is_uint_string(point.get("timeUnixNano")):
            problems.append(f"{where}: timeUnixNano must be uint64-as-string")
        _check_attributes(where, point.get("attributes", []), problems)
