"""OTLP export: file/stdout and HTTP exporters plus the periodic push loop.

Two destinations for the payloads :mod:`repro.obs.otel.encode` builds:

* :class:`OtlpJsonFileExporter` appends one JSON line per payload to a
  file (or stdout with path ``"-"``) — the collector-less path: the
  output replays into any OTLP pipeline later, or greps directly.
* :class:`OtlpHttpExporter` POSTs to a collector's
  ``/v1/traces`` / ``/v1/metrics`` endpoints with ``urllib`` — no
  client-library dependency.

Both follow the :class:`~repro.obs.exporters.JsonlSnapshotWriter`
contract: an export is strictly less important than the engine work
around it, so transient ``OSError`` (which covers ``urllib`` network
errors) is retried with capped exponential backoff via
:func:`~repro.resilience.retry.retry_io`, and an export that still
fails is *dropped* rather than raised.  The accounting is self-describing:
``repro_otel_exports_total`` / ``repro_otel_export_drops_total`` /
``repro_otel_export_retries_total`` (all labelled by ``signal``) land in
the same registry being exported, so the collector sees the export
path's own health.

:class:`OtelPushLoop` ties it together: drain span groups, encode both
signals, export, either on demand (:meth:`~OtelPushLoop.push_now`), on a
minimum interval from an ingest loop (:meth:`~OtelPushLoop.maybe_push`),
or from a daemon thread (:meth:`~OtelPushLoop.start`).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable, Mapping, Protocol, Sequence

from ...resilience.retry import RetryPolicy, retry_io
from ..metrics import Counter, MetricFamily, MetricsRegistry
from ..tracing import SpanEvent
from . import backend as otel_backend
from .encode import default_resource, encode_metrics, encode_span_groups

__all__ = [
    "OtlpExporter",
    "OtlpJsonFileExporter",
    "OtlpHttpExporter",
    "OtelPushLoop",
    "SpanSource",
]

#: One drained span batch: ``(extra resource attributes, events)``.
SpanGroup = tuple[Mapping[str, object], Sequence[SpanEvent]]

#: Callable yielding span groups to export (e.g. a fleet drain).
SpanSource = Callable[[], Sequence[SpanGroup]]


class OtlpExporter(Protocol):
    """Anything that can ship one encoded OTLP payload somewhere."""

    def export(self, signal: str, payload: Mapping[str, Any]) -> bool:
        """Ship one payload; ``signal`` is ``"traces"`` or ``"metrics"``."""
        ...  # pragma: no cover - protocol


class _AccountedExporter:
    """Shared retry/drop accounting for the concrete exporters."""

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.retry = retry
        self.exports = 0
        self.drops = 0
        self.retries = 0
        self._sleep = sleep
        self._exports_family: MetricFamily | None = None
        self._drops_family: MetricFamily | None = None
        self._retries_family: MetricFamily | None = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Register the ``repro_otel_export_*`` self-metrics in ``registry``."""
        exports = registry.counter(
            "repro_otel_exports_total",
            "OTLP payloads exported successfully, by signal.",
            labelnames=("signal",),
        )
        drops = registry.counter(
            "repro_otel_export_drops_total",
            "OTLP payloads dropped after exhausting export retries, by signal.",
            labelnames=("signal",),
        )
        retries = registry.counter(
            "repro_otel_export_retries_total",
            "OTLP export attempts that failed and were retried, by signal.",
            labelnames=("signal",),
        )
        assert (
            isinstance(exports, MetricFamily)
            and isinstance(drops, MetricFamily)
            and isinstance(retries, MetricFamily)
        )
        self._exports_family = exports
        self._drops_family = drops
        self._retries_family = retries

    def _count(self, family: MetricFamily | None, signal: str) -> None:
        if family is not None:
            child = family.labels(signal)
            assert isinstance(child, Counter)
            child.inc()

    def _send(self, signal: str, data: bytes) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def export(self, signal: str, payload: Mapping[str, Any]) -> bool:
        """Encode to JSON and ship with retries; returns whether it landed.

        A payload that still fails after the backoff schedule is counted
        as a drop, never raised — telemetry must not take down ingest.
        """
        data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

        def on_retry(attempt: int, exc: BaseException) -> None:
            self.retries += 1
            self._count(self._retries_family, signal)

        kwargs: dict[str, Any] = {"policy": self.retry, "on_retry": on_retry}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        try:
            retry_io(lambda: self._send(signal, data), **kwargs)
        except OSError:
            self.drops += 1
            self._count(self._drops_family, signal)
            return False
        self.exports += 1
        self._count(self._exports_family, signal)
        return True


class OtlpJsonFileExporter(_AccountedExporter):
    """Appends one OTLP/JSON payload per line to a file, or stdout via ``"-"``.

    Each line is ``{"resourceSpans": ...}`` or ``{"resourceMetrics": ...}``
    exactly as a collector's HTTP body would be, so a recorded run can be
    replayed against ``/v1/traces`` later.  File appends are atomic
    (``O_APPEND``, one write per line), matching
    :class:`~repro.obs.exporters.JsonlSnapshotWriter`.
    """

    def __init__(
        self,
        path: str | Path,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        super().__init__(retry=retry, registry=registry, sleep=sleep)
        self.path = Path(path) if path != "-" else None

    def _send(self, signal: str, data: bytes) -> None:
        if self.path is None:
            sys.stdout.write(data.decode("utf-8") + "\n")
            sys.stdout.flush()
            return
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data + b"\n")
        finally:
            os.close(fd)


class OtlpHttpExporter(_AccountedExporter):
    """POSTs OTLP/JSON to a collector endpoint with stdlib ``urllib``.

    ``endpoint`` is the collector base URL (e.g.
    ``http://localhost:4318``); the standard per-signal paths
    ``/v1/traces`` and ``/v1/metrics`` are appended.  Network failures
    (``urllib`` raises ``OSError`` subclasses) follow the shared
    retry-then-drop policy.
    """

    def __init__(
        self,
        endpoint: str,
        timeout: float = 5.0,
        headers: Mapping[str, str] | None = None,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        super().__init__(retry=retry, registry=registry, sleep=sleep)
        self.endpoint = endpoint.rstrip("/")
        self.timeout = timeout
        self.headers = dict(headers or {})

    def _send(self, signal: str, data: bytes) -> None:
        request = urllib.request.Request(
            f"{self.endpoint}/v1/{signal}",
            data=data,
            headers={"Content-Type": "application/json", **self.headers},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout):
            pass


class OtelPushLoop:
    """Periodically encodes and exports the engine's spans and metrics.

    ``spans`` is a zero-argument callable returning drained span groups
    (``[(extra resource attrs, events), ...]`` — per-shard for a fleet,
    a single group for one engine); draining means each span is exported
    exactly once.  ``metrics`` is a registry or a zero-argument callable
    returning one (a fleet merges per-shard registries on demand).
    ``resource`` attributes are stamped on everything exported, and the
    active :mod:`~repro.obs.otel.backend` is mirrored into the registry's
    ``repro_otel_backend`` gauge.

    Three driving styles: :meth:`push_now` on demand, :meth:`maybe_push`
    unconditionally from a loop (rate-limited to ``every_s``), or
    :meth:`start` for a daemon thread that pushes every ``every_s``
    until :meth:`stop` (which pushes one final time so shutdown never
    strands buffered spans).
    """

    def __init__(
        self,
        exporter: OtlpExporter,
        metrics: MetricsRegistry | Callable[[], MetricsRegistry] | None = None,
        spans: SpanSource | None = None,
        resource: Mapping[str, object] | None = None,
        every_s: float | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if every_s is not None and every_s <= 0:
            raise ValueError("every_s must be positive")
        self.exporter = exporter
        self.every_s = every_s
        self._metrics = metrics
        self._spans = spans
        self._resource = {**default_resource(), **(resource or {})}
        self._last_push: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # push_now() is reachable from the daemon thread, from stop()'s
        # final flush, and from user code; one push at a time.
        self._push_lock = threading.Lock()
        # Self-metrics need a *stable* home: ``registry`` explicitly, or
        # ``metrics`` when it is a registry object.  A callable source
        # (fleet merges built per push) would strand the counters in a
        # throwaway copy, so it is never bound implicitly.
        self_registry = registry
        if self_registry is None and isinstance(metrics, MetricsRegistry):
            self_registry = metrics
        if self_registry is not None:
            if isinstance(self.exporter, _AccountedExporter):
                self.exporter.bind_registry(self_registry)
            otel_backend.register_backend_gauge(self_registry)

    def _registry_now(self) -> MetricsRegistry | None:
        if callable(self._metrics):
            return self._metrics()
        return self._metrics

    def push_now(self) -> dict[str, int]:
        """Drain, encode, and export both signals once.

        Returns ``{"spans": exported span count, "payloads": landed
        payload count}``.  The span payload is skipped when nothing was
        drained; a metrics payload goes out every push (cumulative
        counters must keep reporting).
        """
        with self._push_lock:
            self._last_push = time.monotonic()
            span_count = 0
            payloads = 0
            if self._spans is not None:
                groups = [
                    (dict(extra), list(events)) for extra, events in self._spans()
                ]
                span_count = sum(len(events) for _, events in groups)
                if span_count:
                    for extra, events in groups:
                        otel_backend.replay_spans_via_sdk(events, {**self._resource, **extra})
                    payload = encode_span_groups(groups, base_resource=self._resource)
                    if self.exporter.export("traces", payload):
                        payloads += 1
            registry = self._registry_now()
            if registry is not None:
                payload = encode_metrics(registry, resource=self._resource)
                if self.exporter.export("metrics", payload):
                    payloads += 1
            return {"spans": span_count, "payloads": payloads}

    def maybe_push(self) -> bool:
        """Push if ``every_s`` elapsed since the last push (or ever).

        Callable unconditionally from an ingest loop; the rate limiter
        advances even when the export drops, so a dead collector never
        turns the loop into a hot retry spin.
        """
        now = time.monotonic()
        if (
            self.every_s is not None
            and self._last_push is not None
            and now - self._last_push < self.every_s
        ):
            return False
        self.push_now()
        return True

    def start(self) -> None:
        """Push every ``every_s`` from a daemon thread until :meth:`stop`."""
        if self.every_s is None:
            raise ValueError("start() needs every_s; use push_now()/maybe_push() otherwise")
        if self._thread is not None:
            raise RuntimeError("push loop already started")
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.every_s):
                self.push_now()

        self._thread = threading.Thread(target=run, name="otel-push", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and push one final time (flush, not discard)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self.push_now()
