"""Backend selection for the OTel export layer.

Exactly one backend is active per process:

``"sdk"``
    The real ``opentelemetry-sdk``, when importable; span batches are
    replayed through its tracer provider so any exporter/processor the
    installation configures sees them.  Never a hard dependency.
``"stdlib"``
    The pure-stdlib OTLP/JSON encoders in :mod:`repro.obs.otel.encode`
    — the fallback, and the path every CI run exercises.

The ``REPRO_OTEL`` environment variable overrides the automatic choice
(``auto`` / empty keeps it); requesting ``sdk`` without the SDK
installed falls back to ``stdlib`` rather than failing, because export
must not break on a missing optional dependency.  This mirrors
``REPRO_FASTPATH`` in :mod:`repro.fastpath.backend` — one gated-import
idiom across the codebase.

Which backend won is observable: :func:`register_backend_gauge`
registers the ``repro_otel_backend`` gauge (one time series per backend
label, 1 on the active one) into any telemetry registry, and registered
families are kept in sync when tests flip backends via
:func:`set_backend`.
"""

from __future__ import annotations

import importlib.util
import os
from typing import TYPE_CHECKING, Sequence

from ..metrics import Gauge, MetricFamily, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tracing import SpanEvent

__all__ = [
    "BACKENDS",
    "HAVE_SDK",
    "available_backends",
    "backend_name",
    "set_backend",
    "register_backend_gauge",
    "replay_spans_via_sdk",
    "describe",
]

#: Every backend name this module understands, preference order first.
BACKENDS: tuple[str, ...] = ("sdk", "stdlib")


def _sdk_importable() -> bool:
    try:
        return importlib.util.find_spec("opentelemetry.sdk") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic import state
        return False


#: Whether ``opentelemetry-sdk`` can be imported in this process.
HAVE_SDK: bool = _sdk_importable()

#: Gauge families registered via :func:`register_backend_gauge`, kept in
#: sync whenever the active backend changes.
_GAUGE_FAMILIES: list[MetricFamily] = []


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run in this process."""
    return tuple(b for b in BACKENDS if b != "sdk" or HAVE_SDK)


def _initial_backend() -> str:
    """Import-time choice: env override first, then sdk-if-present."""
    automatic = "sdk" if HAVE_SDK else "stdlib"
    requested = os.environ.get("REPRO_OTEL", "").strip().lower()
    if requested in ("", "auto"):
        return automatic
    if requested == "sdk" and not HAVE_SDK:
        return "stdlib"
    if requested in BACKENDS:
        return requested
    raise ValueError(
        f"REPRO_OTEL={requested!r} is not a known backend; "
        f"choose one of {', '.join(BACKENDS)} or 'auto'"
    )


_backend: str = _initial_backend()


def backend_name() -> str:
    """Name of the active backend (``sdk`` / ``stdlib``)."""
    return _backend


def set_backend(name: str) -> str:
    """Activate a backend by name; returns the previously active one.

    Requesting ``"sdk"`` when the SDK is not importable raises, unlike
    the import-time selection which silently falls back — an explicit
    request failing silently would mislead whoever configured it.
    """
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose one of {', '.join(BACKENDS)}")
    if name == "sdk" and not HAVE_SDK:
        raise RuntimeError("the sdk backend was requested but opentelemetry-sdk is not importable")
    previous = _backend
    _backend = name
    for family in _GAUGE_FAMILIES:
        _sync_gauge(family)
    return previous


def _sync_gauge(family: MetricFamily) -> None:
    """Point one registered gauge family at the active backend."""
    for name in BACKENDS:
        child = family.labels(name)
        assert isinstance(child, Gauge)
        child.set(1.0 if name == _backend else 0.0)


def register_backend_gauge(registry: MetricsRegistry) -> None:
    """Expose the active OTel backend through a telemetry registry.

    Registers the ``repro_otel_backend`` gauge family (one child per
    backend label, value 1 on the active one — the Prometheus idiom for
    an enum-valued fact).
    """
    family = registry.gauge(
        "repro_otel_backend",
        "Active repro.obs.otel export backend (1 on the selected label).",
        labelnames=("backend",),
    )
    assert isinstance(family, MetricFamily)
    if family not in _GAUGE_FAMILIES:
        _GAUGE_FAMILIES.append(family)
    _sync_gauge(family)


def replay_spans_via_sdk(
    events: Sequence["SpanEvent"], resource_attrs: dict[str, object]
) -> bool:
    """Replay finished spans through the installed ``opentelemetry-sdk``.

    Returns ``False`` (having done nothing) unless the ``sdk`` backend is
    active, so callers can fall through to the stdlib encoder
    unconditionally.  With the SDK present, each
    :class:`~repro.obs.tracing.SpanEvent` is re-emitted as an SDK span
    under a resource built from ``resource_attrs``; whatever span
    processors/exporters the ambient tracer provider carries then see
    the fleet's spans alongside any other instrumentation.
    """
    if _backend != "sdk" or not HAVE_SDK:
        return False
    return _replay_spans(events, resource_attrs)  # pragma: no cover - requires otel sdk


def _replay_spans(  # pragma: no cover - requires opentelemetry-sdk
    events: Sequence["SpanEvent"], resource_attrs: dict[str, object]
) -> bool:
    from opentelemetry import trace as otel_trace  # type: ignore[import-not-found]
    from opentelemetry.sdk.resources import Resource  # type: ignore[import-not-found]
    from opentelemetry.sdk.trace import TracerProvider  # type: ignore[import-not-found]

    from .encode import SCOPE_NAME, epoch_anchor_ns

    provider = otel_trace.get_tracer_provider()
    if not isinstance(provider, TracerProvider):
        provider = TracerProvider(
            resource=Resource.create({str(k): str(v) for k, v in resource_attrs.items()})
        )
        otel_trace.set_tracer_provider(provider)
    tracer = provider.get_tracer(SCOPE_NAME)
    anchor = epoch_anchor_ns()
    for event in events:
        start_ns = anchor + int(event.start * 1e9)
        span = tracer.start_span(event.name, start_time=start_ns)
        for key, value in event.attrs.items():
            span.set_attribute(key, value)
        span.set_attribute("count", event.count)
        span.end(end_time=start_ns + max(0, int(event.duration * 1e9)))
    return True


def describe() -> dict[str, object]:
    """Diagnostic summary of the backend state (JSON-compatible)."""
    return {
        "backend": _backend,
        "available": list(available_backends()),
        "sdk_importable": HAVE_SDK,
        "env_override": os.environ.get("REPRO_OTEL", "") or None,
    }
