"""The per-engine telemetry hub: one registry, one tracer, one switch.

:class:`Telemetry` bundles what one
:class:`~repro.streams.engine.ContinuousQueryEngine` needs to observe
itself: a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
latency histograms), a :class:`~repro.obs.tracing.Tracer` (bounded span
ring), and the master ``enabled`` flag.

The flag is structural, not checked per event: a disabled hub hands the
engine ``tracer = None`` and makes the engine leave ``relation.stats``
unset, so the ingest hot path is byte-for-byte the uninstrumented one
(a single ``is None`` branch).  ``benchmarks/bench_telemetry_overhead.py``
holds the enabled path to < 10% overhead over this disabled baseline.
"""

from __future__ import annotations

from ..fastpath import register_backend_gauge
from .metrics import MetricsRegistry
from .tracing import DEFAULT_TRACE_CAPACITY, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Registry + tracer + on/off switch for one engine.

    ``enabled=False`` disables everything (metrics and tracing);
    ``tracing=False`` keeps metrics but skips span recording.  Pass an
    existing ``registry`` to aggregate several engines into one export
    surface.  ``trace_sample_every=N`` records ~1 in ``N`` hot-path spans
    (see :class:`~repro.obs.tracing.Tracer`); ``None`` records all.

    An enabled hub also registers the ``repro_fastpath_backend`` gauge so
    every metrics surface reports which kernel backend
    (numba / numpy / reference) this process selected at import time.
    """

    def __init__(
        self,
        enabled: bool = True,
        tracing: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_sample_every: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer: Tracer | None = (
            Tracer(capacity=trace_capacity, sample_every=trace_sample_every)
            if (enabled and tracing)
            else None
        )
        if enabled:
            register_backend_gauge(self.registry)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A hub that records nothing (the zero-overhead baseline)."""
        return cls(enabled=False, tracing=False)

    def snapshot(self) -> dict[str, object]:
        """JSON-compatible state: metrics plus trace-buffer accounting."""
        out: dict[str, object] = {"enabled": self.enabled, "metrics": self.registry.snapshot()}
        if self.tracer is not None:
            out["trace"] = self.tracer.snapshot()
        return out

    def reset(self) -> None:
        """Zero all metrics and drop buffered spans."""
        self.registry.reset()
        if self.tracer is not None:
            self.tracer.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, metrics={len(self.registry)})"
