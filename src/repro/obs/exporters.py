"""Exporters: Prometheus text exposition, JSONL snapshots, live dashboard.

Three ways out of the in-memory registry:

* :func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  in the Prometheus text exposition format (version 0.0.4) — counters and
  gauges as plain samples, histograms as cumulative ``_bucket{le=...}``
  series plus ``_sum`` / ``_count`` — ready to serve from any HTTP
  endpoint or write to a textfile-collector directory.
* :class:`JsonlSnapshotWriter` appends timestamped registry snapshots to
  a JSONL file, on demand (:meth:`~JsonlSnapshotWriter.write`) or on a
  minimum wall-clock interval (:meth:`~JsonlSnapshotWriter.maybe_write`).
* :func:`render_dashboard` formats one engine's telemetry — counters,
  estimate-latency percentiles, accuracy table, recent spans — as the
  text screen the ``repro-experiments monitor`` subcommand refreshes.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

from ..resilience.retry import RetryPolicy, retry_io
from .metrics import LatencyHistogram, MetricFamily, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..streams.stats import EngineStats
    from .accuracy import AccuracyTracker
    from .tracing import Tracer

__all__ = ["prometheus_text", "JsonlSnapshotWriter", "render_dashboard"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isinf(value) and value > 0:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _histogram_lines(name: str, labels: str, hist: LatencyHistogram) -> list[str]:
    lines: list[str] = []
    cumulative = 0
    for bound, count in zip(hist.bounds + (math.inf,), hist.bucket_counts):
        cumulative += count
        le = f'le="{_format_value(bound)}"'
        inner = labels[1:-1] + "," + le if labels else le
        lines.append(f"{name}_bucket{{{inner}}} {cumulative}")
    lines.append(f"{name}_sum{labels} {_format_value(hist.sum)}")
    lines.append(f"{name}_count{labels} {hist.count}")
    return lines


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, MetricFamily):
            for values, child in metric.items():
                labels = _labels_text(metric.labelnames, values)
                if isinstance(child, LatencyHistogram):
                    lines.extend(_histogram_lines(name, labels, child))
                else:
                    lines.append(f"{name}{labels} {_format_value(child.value)}")
        elif isinstance(metric, LatencyHistogram):
            lines.extend(_histogram_lines(name, "", metric))
        else:
            lines.append(f"{name} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


class JsonlSnapshotWriter:
    """Appends one JSON object per snapshot to a line-delimited file.

    Each line is ``{"ts": <unix seconds>, ...snapshot}``; a run of lines
    is a coarse time series any downstream tool can replay.  With
    ``every_s`` set, :meth:`maybe_write` rate-limits to one line per
    interval so it can be called from an ingest loop unconditionally.

    Appends are atomic (one ``O_APPEND`` write per line, so concurrent
    writers and crashes never interleave partial lines) and transient
    ``OSError`` is retried with capped exponential backoff.  An export is
    strictly less important than the ingest loop calling it, so a write
    that still fails after the retries is *dropped* rather than raised,
    and counted in :attr:`drops` (plus the ``repro_export_drops_total``
    counter when a registry is supplied).
    """

    def __init__(
        self,
        path: str | Path,
        every_s: float | None = None,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if every_s is not None and every_s <= 0:
            raise ValueError("every_s must be positive")
        self.path = Path(path)
        self.every_s = every_s
        self.retry = retry
        self.snapshots_written = 0
        self.drops = 0
        self._drop_counter = (
            registry.counter(
                "repro_export_drops_total",
                "Snapshot lines dropped after exhausting write retries.",
            )
            if registry is not None
            else None
        )
        self._sleep = sleep
        self._last_write: float | None = None

    def write(self, snapshot: Mapping[str, object]) -> bool:
        """Append one snapshot line; returns whether the append landed.

        A failed append (after retries) is counted as a drop, not raised
        — and still advances the rate limiter, so a broken disk does not
        turn :meth:`maybe_write` into a hot retry loop.
        """
        line = json.dumps({"ts": time.time(), **snapshot}, sort_keys=True)
        data = (line + "\n").encode("utf-8")

        def attempt() -> None:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, data)
            finally:
                os.close(fd)

        kwargs: dict[str, Callable[[float], None]] = (
            {} if self._sleep is None else {"sleep": self._sleep}
        )
        self._last_write = time.monotonic()
        try:
            retry_io(attempt, policy=self.retry, **kwargs)
        except OSError:
            self.drops += 1
            if self._drop_counter is not None:
                self._drop_counter.inc()
            return False
        self.snapshots_written += 1
        return True

    def maybe_write(self, snapshot_fn: Callable[[], Mapping[str, object]]) -> bool:
        """Write if ``every_s`` elapsed since the last write (or ever).

        Takes a zero-argument callable so snapshot assembly is skipped
        entirely on the rate-limited path.  Returns whether it wrote.
        """
        now = time.monotonic()
        if (
            self.every_s is not None
            and self._last_write is not None
            and now - self._last_write < self.every_s
        ):
            return False
        self.write(snapshot_fn())
        return True


def _fmt_latency(seconds: float) -> str:
    if math.isnan(seconds):
        return "n/a"
    if seconds < 1e-3:
        return f"{seconds * 1e6:,.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:,.2f} ms"
    return f"{seconds:,.2f} s"


def render_dashboard(
    stats: "EngineStats",
    accuracy: "AccuracyTracker | None" = None,
    tracer: "Tracer | None" = None,
    elapsed_s: float | None = None,
) -> str:
    """One text screen: counters, latency percentiles, accuracy, spans."""
    sections: list[str] = []
    header = "telemetry dashboard"
    if elapsed_s is not None and elapsed_s > 0:
        header += (
            f"  (t+{elapsed_s:,.1f}s,"
            f" {stats.tuples_ingested / elapsed_s:,.0f} tuples/s overall)"
        )
    sections.append(header)
    sections.append(stats.summary())
    hist = stats.estimate_latency_histogram
    if hist.count:
        sections.append(
            "estimate latency:"
            f"  p50 {_fmt_latency(hist.percentile(50))}"
            f"  p95 {_fmt_latency(hist.percentile(95))}"
            f"  p99 {_fmt_latency(hist.percentile(99))}"
            f"  over {hist.count:,} calls"
        )
    if accuracy is not None:
        sections.append(accuracy.summary())
    if tracer is not None and len(tracer):
        sampling = (
            f" 1-in-{tracer.sample_every} sampling, sampled out {tracer.sampled_out:,},"
            if tracer.sample_every is not None
            else ""
        )
        lines = [
            f"recent spans (buffered {len(tracer)}/{tracer.capacity},"
            f"{sampling} dropped {tracer.dropped:,}):"
        ]
        for event in tracer.tail(5):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(event.attrs.items()))
            lines.append(
                f"  {event.name:<16} {_fmt_latency(event.duration):>11}"
                f"  x{event.count:<7,} {attrs}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
