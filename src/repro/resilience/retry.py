"""Retry with capped exponential backoff for transient I/O failures.

Checkpoint writes and telemetry-snapshot appends go to filesystems that
can fail transiently (NFS hiccups, full-but-draining disks, containers
being live-migrated).  :func:`retry_io` retries a callable over such
failures with exponentially growing, capped sleeps, so one transient
``OSError`` does not cost weeks of accumulated synopsis state.

Two production safeguards on top of plain exponential backoff:

* **Full jitter** (``RetryPolicy(jitter=True)``): each delay is drawn
  uniformly from ``[0, capped_backoff]``.  A fleet of shards that all
  hit the same transient fault (one NFS server blip) would otherwise
  retry in lockstep and re-create the very stampede that caused the
  fault; jitter decorrelates them.  The RNG is injectable for
  deterministic tests.
* **Deadline cap** (``RetryPolicy(deadline=...)``): an overall budget in
  seconds across *all* attempts.  Backoff bounds the per-retry wait;
  the deadline bounds the total time a caller can be stuck inside
  ``retry_io``, which is what a heartbeat-supervised worker needs —
  better to fail the one write and stay responsive than to be declared
  dead while dutifully backing off.

Retries are observable: pass ``operation=...`` and a ``registry`` and
every retry increments ``repro_retries_total{operation=...}``.  The
sleep and clock functions are injectable, which is how the chaos tests
drive the policy without real waiting.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

__all__ = ["RetryPolicy", "retry_io"]

T = TypeVar("T")


class RetryPolicy:
    """Attempt count plus capped exponential backoff delays.

    ``attempts`` is the total number of tries (1 = no retry).  The
    deterministic delay before retry ``i`` (1-based) is
    ``min(base_delay * 2**(i-1), max_delay)`` seconds; with
    ``jitter=True`` each delay is instead drawn uniformly from
    ``[0, min(base_delay * 2**(i-1), max_delay)]`` (AWS-style "full
    jitter").  ``deadline`` caps the *total* elapsed seconds across all
    attempts: once exceeded, the last failure is re-raised immediately
    rather than sleeping again.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: bool = False,
        deadline: float | None = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline = deadline

    def backoff_caps(self) -> Sequence[float]:
        """The capped exponential ceiling before each retry (length ``attempts - 1``)."""
        return [
            min(self.base_delay * (2.0**i), self.max_delay)
            for i in range(self.attempts - 1)
        ]

    def delays(self, rng: random.Random | None = None) -> Sequence[float]:
        """Concrete backoff delays; with jitter, drawn from ``rng``.

        Without jitter this is :meth:`backoff_caps` verbatim (the
        pre-jitter behaviour, kept deterministic for tests and for
        callers that want fixed pacing).
        """
        caps = self.backoff_caps()
        if not self.jitter:
            return caps
        rng = rng if rng is not None else random.Random()
        return [rng.uniform(0.0, cap) for cap in caps]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extras = ""
        if self.jitter:
            extras += ", jitter=True"
        if self.deadline is not None:
            extras += f", deadline={self.deadline}"
        return (
            f"RetryPolicy(attempts={self.attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay}{extras})"
        )


def retry_io(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    operation: str | None = None,
    registry: "MetricsRegistry | None" = None,
    rng: random.Random | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``fn`` with retries over transient failures.

    Retries only exceptions matching ``retry_on`` (transient ``OSError``
    by default); anything else propagates immediately.  ``on_retry`` is
    invoked with ``(attempt_number, exception)`` before each backoff
    sleep — the engine uses it to count retries into its metrics
    registry.  With ``operation`` and ``registry`` given, every retry
    also increments the labeled ``repro_retries_total`` counter, the
    fleet-wide view of which subsystems are limping.  The policy's
    ``deadline`` (if any) is measured with ``clock`` from the first
    attempt; once spent, the last failure is re-raised without further
    sleeping.  The last failure is re-raised once attempts are
    exhausted.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays(rng)
    started = clock()
    counter = None
    if registry is not None and operation is not None:
        counter = registry.counter(
            "repro_retries_total",
            "I/O retries performed, by logical operation.",
            labelnames=("operation",),
        ).labels(operation)
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt == policy.attempts - 1:
                raise
            delay = delays[attempt]
            if policy.deadline is not None and (
                clock() - started + delay > policy.deadline
            ):
                raise
            if counter is not None:
                counter.inc()
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
