"""Retry with capped exponential backoff for transient I/O failures.

Checkpoint writes and telemetry-snapshot appends go to filesystems that
can fail transiently (NFS hiccups, full-but-draining disks, containers
being live-migrated).  :func:`retry_io` retries a callable over such
failures with exponentially growing, capped sleeps, so one transient
``OSError`` does not cost weeks of accumulated synopsis state.

The sleep function is injectable, which is how the chaos tests drive
the policy without real waiting.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence, TypeVar

__all__ = ["RetryPolicy", "retry_io"]

T = TypeVar("T")


class RetryPolicy:
    """Attempt count plus capped exponential backoff delays.

    ``attempts`` is the total number of tries (1 = no retry).  The delay
    before retry ``i`` (1-based) is ``min(base_delay * 2**(i-1),
    max_delay)`` seconds.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay

    def delays(self) -> Sequence[float]:
        """The backoff delay before each retry (length ``attempts - 1``)."""
        return [
            min(self.base_delay * (2.0**i), self.max_delay)
            for i in range(self.attempts - 1)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(attempts={self.attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay})"
        )


def retry_io(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` with retries over transient failures.

    Retries only exceptions matching ``retry_on`` (transient ``OSError``
    by default); anything else propagates immediately.  ``on_retry`` is
    invoked with ``(attempt_number, exception)`` before each backoff
    sleep — the engine uses it to count retries into its metrics
    registry.  The last failure is re-raised once attempts are
    exhausted.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt == policy.attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            delay = delays[attempt]
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
