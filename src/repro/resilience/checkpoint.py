"""Versioned, integrity-checked engine checkpoints.

File format (version 1): one ASCII JSON header line, a newline, then the
pickled payload bytes::

    {"magic": "repro-checkpoint", "version": 1,
     "sha256": "<hex digest of the payload bytes>", "payload_bytes": N}
    <N bytes of pickle>

The header is what makes a checkpoint *checkable before it is trusted*:
:func:`read_checkpoint` refuses files whose magic/version do not match,
whose payload is truncated, or whose bytes do not hash to the recorded
digest (:class:`~repro.resilience.errors.CheckpointIntegrityError`).
Writes go through a temp-file-then-``os.replace`` dance in the target
directory with an fsync, so a crash mid-write leaves the previous
checkpoint intact rather than a half-written file; transient ``OSError``
is retried with capped exponential backoff
(:func:`~repro.resilience.retry.retry_io`).

:class:`CheckpointStore` adds last-K rotation on top: sequentially
numbered checkpoint files in one directory, oldest pruned, newest
discoverable with :meth:`CheckpointStore.latest` — the shape a
supervisor loop needs for "checkpoint every N batches, restore the
newest good one after a crash".

Payload assembly/application lives on the engine
(:meth:`repro.streams.engine.ContinuousQueryEngine.save_checkpoint` /
``load_checkpoint``); this module owns only the file format, so it can
be tested against synthetic payloads and reused by future sharded
workers.  Payloads are pickled — checkpoints are trusted operator state,
not an interchange format; never load a checkpoint from an untrusted
source.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain
from .errors import CheckpointError, CheckpointIntegrityError
from .retry import RetryPolicy, retry_io

__all__ = [
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "CheckpointStore",
    "domain_from_spec",
    "domain_to_spec",
    "read_checkpoint",
    "write_checkpoint",
]

FORMAT_MAGIC = "repro-checkpoint"
FORMAT_VERSION = 1

#: Rotated checkpoint files: ``checkpoint-00000042.ckpt``.
_STORE_PATTERN = re.compile(r"^checkpoint-(\d{8})\.ckpt$")


def domain_to_spec(domain: Domain) -> dict[str, Any]:
    """Serialize a :class:`Domain` to plain JSON-compatible types."""
    if domain.is_categorical:
        return {"categories": list(domain._categories or ())}
    return {"low": domain.low, "size": domain.size}


def domain_from_spec(spec: dict[str, Any]) -> Domain:
    """Inverse of :func:`domain_to_spec`."""
    if "categories" in spec:
        return Domain.categorical(spec["categories"])
    return Domain.integer_range(spec["low"], spec["low"] + spec["size"] - 1)


def _header_bytes(payload: bytes) -> bytes:
    header = {
        "magic": FORMAT_MAGIC,
        "version": FORMAT_VERSION,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
    }
    return (json.dumps(header, sort_keys=True) + "\n").encode("ascii")


def write_checkpoint(
    path: str | Path,
    payload: dict[str, Any],
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> int:
    """Atomically write a checkpoint file; returns its size in bytes.

    The payload is pickled, prefixed with the integrity header, written
    to a temporary sibling file (fsynced), and moved into place with
    ``os.replace`` — readers only ever see the old or the new complete
    file.  Transient ``OSError`` anywhere in that sequence is retried
    under ``retry`` (capped exponential backoff); the temp file is
    cleaned up on final failure.
    """
    path = Path(path)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    data = _header_bytes(blob) + blob

    def attempt() -> int:
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return len(data)

    if sleep is None:
        return retry_io(attempt, policy=retry, on_retry=on_retry)
    return retry_io(attempt, policy=retry, on_retry=on_retry, sleep=sleep)


def read_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and verify a checkpoint file, returning its payload dict.

    Raises :class:`CheckpointError` if the file is missing or unreadable
    and :class:`CheckpointIntegrityError` if the header is malformed,
    the version is unsupported, the payload is truncated, or the SHA-256
    digest does not match.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            header_line = handle.readline()
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        header = json.loads(header_line.decode("ascii"))
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointIntegrityError(
            f"{path} is not a checkpoint file (bad header: {exc})"
        ) from exc
    if header.get("magic") != FORMAT_MAGIC:
        raise CheckpointIntegrityError(f"{path} is not a checkpoint file (bad magic)")
    if header.get("version") != FORMAT_VERSION:
        raise CheckpointIntegrityError(
            f"{path} has unsupported checkpoint format version "
            f"{header.get('version')!r} (this build reads {FORMAT_VERSION})"
        )
    if header.get("payload_bytes") != len(blob):
        raise CheckpointIntegrityError(
            f"{path} is truncated: header promises {header.get('payload_bytes')} "
            f"payload bytes, file holds {len(blob)}"
        )
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointIntegrityError(
            f"{path} failed its SHA-256 integrity check (stored "
            f"{header.get('sha256')}, computed {digest})"
        )
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # corrupt-but-hash-matching payloads are hostile input
        raise CheckpointIntegrityError(f"{path} payload does not unpickle: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointIntegrityError(f"{path} payload is not a checkpoint dict")
    return payload


class CheckpointStore:
    """A directory of rotated checkpoints with last-K retention.

    ``save(engine)`` writes the next sequentially numbered checkpoint
    (``checkpoint-00000001.ckpt``, ...) and prunes all but the newest
    ``keep`` files; ``latest()`` returns the newest path for recovery.
    Sequence numbers continue from whatever already exists in the
    directory, so a restarted process keeps extending the same series.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def paths(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        found: list[tuple[int, Path]] = []
        for entry in self.directory.iterdir():
            match = _STORE_PATTERN.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    def latest(self) -> Path | None:
        """The newest checkpoint path, or ``None`` if the store is empty."""
        paths = self.paths()
        return paths[-1] if paths else None

    def next_path(self) -> Path:
        """The path the next :meth:`save` will write."""
        paths = self.paths()
        if not paths:
            sequence = 1
        else:
            match = _STORE_PATTERN.match(paths[-1].name)
            assert match is not None  # paths() only yields matching names
            sequence = int(match.group(1)) + 1
        return self.directory / f"checkpoint-{sequence:08d}.ckpt"

    def save(self, engine: Any, **write_options: Any) -> Path:
        """Checkpoint an engine into the store and rotate old files."""
        path = self.next_path()
        engine.save_checkpoint(path, **write_options)
        self.prune()
        return path

    def prune(self) -> list[Path]:
        """Delete all but the newest ``keep`` checkpoints; returns removals."""
        paths = self.paths()
        stale = paths[: -self.keep] if len(paths) > self.keep else []
        for path in stale:
            path.unlink(missing_ok=True)
        return stale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({self.directory}, keep={self.keep}, n={len(self.paths())})"


def payload_nbytes(payload: dict[str, Any]) -> int:
    """Approximate in-memory size of a checkpoint payload's array state.

    Used by the checkpoint-overhead benchmark to report cost per MB of
    synopsis state.
    """

    def sizeof(obj: Any) -> int:
        if isinstance(obj, np.ndarray):
            return int(obj.nbytes)
        if isinstance(obj, dict):
            return sum(sizeof(v) for v in obj.values())
        if isinstance(obj, (list, tuple)):
            return sum(sizeof(v) for v in obj)
        if isinstance(obj, (bytes, str)):
            return len(obj)
        return 8

    return sizeof(payload)


def iter_payload_arrays(payload: dict[str, Any]) -> Iterator[NDArray[Any]]:
    """Yield every numpy array nested anywhere in a payload (diagnostics)."""
    stack: list[Any] = [payload]
    while stack:
        obj = stack.pop()
        if isinstance(obj, np.ndarray):
            yield obj
        elif isinstance(obj, dict):
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
