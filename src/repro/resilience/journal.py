"""The per-shard command journal: what to replay after a crash.

A supervised shard restores from its latest checkpoint, but the
checkpoint is only as fresh as the last ``save_checkpoint`` — everything
the shard applied *since* then lives only in its (now lost) process
memory.  :class:`CommandJournal` closes that gap: the supervisor appends
every state-mutating command before dispatching it, and records a *mark*
each time a checkpoint write succeeds.  Recovery is then

1. restore the newest checkpoint (state as of the mark), and
2. replay :meth:`CommandJournal.since_mark` in order.

Because every journaled command is deterministic given the shard's
restored state (ingest batches carry their rows; registration carries
its spec; the checkpoint carries RNG bit state), replay reproduces the
pre-crash state exactly — the chaos suite proves answers are identical
to a never-crashed engine at every batch boundary.

A shard that has never checkpointed replays the *whole* journal into a
fresh worker, so supervision works without checkpoints too (at the cost
of an unbounded journal; the mark is what lets :meth:`truncate` forget
the replayed prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["CommandJournal", "JournalEntry"]


@dataclass(frozen=True)
class JournalEntry:
    """One replayable command: a worker method name and its arguments."""

    method: str
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JournalEntry({self.method}, args={len(self.args)})"


class CommandJournal:
    """An append-only command log with a checkpoint mark.

    ``append`` records a command *before* it is sent: if the worker dies
    mid-apply, replay re-applies it onto the restored checkpoint, which
    is correct precisely because the crash also discarded any partial
    effect.  ``mark(ref)`` pins the position (and checkpoint reference,
    e.g. the store directory) of the last durable snapshot;
    ``since_mark()`` is the replay suffix.  ``truncate()`` drops the
    prefix already covered by the mark so long-running fleets do not
    accumulate unbounded replay state.
    """

    def __init__(self) -> None:
        self._entries: list[JournalEntry] = []
        self._mark_position = 0
        self._mark_ref: str | None = None
        self.appended_total = 0
        self.replayed_total = 0

    def append(self, method: str, args: tuple[Any, ...], kwargs: dict[str, Any]) -> JournalEntry:
        """Record one mutating command (call before dispatching it)."""
        entry = JournalEntry(method, tuple(args), dict(kwargs))
        self._entries.append(entry)
        self.appended_total += 1
        return entry

    def mark(self, ref: str | None = None) -> None:
        """Pin the current position as covered by a durable checkpoint."""
        self._mark_position = len(self._entries)
        self._mark_ref = ref

    @property
    def mark_ref(self) -> str | None:
        """The reference recorded with the last mark (checkpoint dir), if any."""
        return self._mark_ref

    @property
    def has_mark(self) -> bool:
        return self._mark_ref is not None

    def since_mark(self) -> list[JournalEntry]:
        """The replay suffix: every command after the last checkpoint mark."""
        entries = self._entries[self._mark_position :]
        self.replayed_total += len(entries)
        return entries

    def all_entries(self) -> list[JournalEntry]:
        """The full log (replay-from-scratch when no checkpoint exists)."""
        self.replayed_total += len(self._entries)
        return list(self._entries)

    def truncate(self) -> int:
        """Forget the prefix covered by the mark; returns entries dropped."""
        dropped = self._mark_position
        if dropped:
            del self._entries[:dropped]
            self._mark_position = 0
        return dropped

    def clear(self) -> None:
        """Forget everything, including the mark (state reset to scratch)."""
        self._entries.clear()
        self._mark_position = 0
        self._mark_ref = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pending(self) -> int:
        """Entries a crash right now would need to replay."""
        return len(self._entries) - self._mark_position

    def as_dict(self) -> dict[str, object]:
        """JSON-compatible accounting snapshot (no command payloads)."""
        return {
            "entries": len(self._entries),
            "pending": self.pending,
            "mark_ref": self._mark_ref,
            "appended_total": self.appended_total,
            "replayed_total": self.replayed_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommandJournal(entries={len(self._entries)}, "
            f"pending={self.pending}, mark={self._mark_ref!r})"
        )
