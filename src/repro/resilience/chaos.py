"""Chaos-testing primitives: flaky observers, failing I/O, crash injection.

The fault-tolerance guarantees in this package are only as good as the
faults they are tested against, so the chaos harness makes every fault
class injectable and deterministic:

* :class:`FlakyObserver` — a stream observer that raises on a schedule,
  for exercising quarantine / degraded-query paths;
* :class:`FlakyIO` — wraps any callable to fail its first ``fail_times``
  invocations with ``OSError`` (or any exception), for exercising the
  retry/backoff paths of checkpoint writes and snapshot appends;
* :class:`FailingFilesystem` — temporarily patches ``os.replace`` /
  ``os.fsync`` to fail the first N calls, simulating a filesystem that
  recovers mid-retry;
* :class:`CrashingIngest` — drives batches into an engine and raises
  :class:`SimulatedCrash` at batch ``crash_at``, optionally saving a
  checkpoint every ``checkpoint_every`` batches first — the harness
  behind the crash-at-any-batch-boundary recovery property tests.

Everything here is deterministic (no wall clock, no ambient RNG), so a
chaos test that fails once fails every time.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..streams.relation import StreamObserver
from .checkpoint import CheckpointStore
from .errors import ResilienceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..streams.engine import ContinuousQueryEngine

__all__ = [
    "ChaosError",
    "CrashingIngest",
    "FailingFilesystem",
    "FlakyIO",
    "FlakyObserver",
    "SimulatedCrash",
]


class ChaosError(RuntimeError):
    """The fault a chaos primitive injects (distinct from real errors)."""


class SimulatedCrash(ResilienceError):
    """Raised by :class:`CrashingIngest` at the configured crash point."""


class FlakyObserver(StreamObserver):
    """An observer that raises :class:`ChaosError` on a schedule.

    ``fail_on`` is the 1-based update number (per-op or per-batch call)
    at which it starts failing; ``recover_after`` optionally caps how
    many consecutive calls fail before it goes healthy again.  When
    wrapped around an ``inner`` observer, healthy calls are forwarded,
    so it can impersonate a real synopsis that breaks mid-stream.
    """

    def __init__(
        self,
        inner: StreamObserver | None = None,
        fail_on: int = 1,
        recover_after: int | None = None,
    ) -> None:
        if fail_on < 1:
            raise ValueError(f"fail_on must be >= 1, got {fail_on}")
        self.inner = inner
        self.fail_on = fail_on
        self.recover_after = recover_after
        self.calls = 0
        self.faults_raised = 0

    def _tick(self) -> None:
        self.calls += 1
        failing = self.calls >= self.fail_on
        if failing and self.recover_after is not None:
            failing = self.calls < self.fail_on + self.recover_after
        if failing:
            self.faults_raised += 1
            raise ChaosError(
                f"injected observer fault (call {self.calls}, fails from {self.fail_on})"
            )

    def on_op(self, relation: Any, op: Any) -> None:
        self._tick()
        if self.inner is not None:
            self.inner.on_op(relation, op)

    def on_ops(self, relation: Any, rows: Any, kind: Any) -> None:
        self._tick()
        if self.inner is not None:
            self.inner.on_ops(relation, rows, kind)


class FlakyIO:
    """Wrap a callable so its first ``fail_times`` calls raise.

    The injected exception defaults to a transient-looking ``OSError``,
    matching what :func:`~repro.resilience.retry.retry_io` retries.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        fail_times: int,
        exc_factory: Callable[[], BaseException] | None = None,
    ) -> None:
        if fail_times < 0:
            raise ValueError(f"fail_times must be >= 0, got {fail_times}")
        self.fn = fn
        self.fail_times = fail_times
        self.exc_factory = exc_factory or (lambda: OSError("injected transient I/O failure"))
        self.calls = 0
        self.failures = 0

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.failures < self.fail_times:
            self.failures += 1
            raise self.exc_factory()
        return self.fn(*args, **kwargs)


class FailingFilesystem:
    """Context manager failing the first N ``os.replace`` calls.

    Simulates a filesystem hiccup under the atomic-rename step of
    checkpoint writes: the first ``fail_replaces`` renames raise
    ``OSError``, later ones succeed — exactly the transient failure the
    write path's backoff must absorb.
    """

    def __init__(self, fail_replaces: int = 1) -> None:
        if fail_replaces < 0:
            raise ValueError(f"fail_replaces must be >= 0, got {fail_replaces}")
        self.fail_replaces = fail_replaces
        self.replace_calls = 0
        self._original_replace: Callable[..., Any] | None = None

    def __enter__(self) -> "FailingFilesystem":
        original = os.replace
        self._original_replace = original

        def flaky_replace(src: Any, dst: Any, **kwargs: Any) -> Any:
            self.replace_calls += 1
            if self.replace_calls <= self.fail_replaces:
                raise OSError(f"injected rename failure #{self.replace_calls}")
            return original(src, dst, **kwargs)

        setattr(os, "replace", flaky_replace)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._original_replace is not None:
            setattr(os, "replace", self._original_replace)
        self._original_replace = None


class CrashingIngest:
    """Drive batches into an engine, checkpointing, then crash at batch N.

    The harness for the recovery property: ingest ``batches`` (a list of
    ``(relation_name, rows)`` pairs) into ``engine``, saving a rotated
    checkpoint into ``store`` every ``checkpoint_every`` batches, and
    raise :class:`SimulatedCrash` *before* applying batch number
    ``crash_at`` (1-based).  With ``crash_at=None`` it runs to the end —
    the uncrashed control run.  Returns the number of batches applied.
    """

    def __init__(
        self,
        engine: "ContinuousQueryEngine",
        store: CheckpointStore | None = None,
        checkpoint_every: int = 1,
        crash_at: int | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if crash_at is not None and crash_at < 1:
            raise ValueError(f"crash_at must be >= 1, got {crash_at}")
        self.engine = engine
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.crash_at = crash_at
        self.batches_applied = 0

    def run(self, batches: Sequence[tuple[str, Any]]) -> int:
        for number, (relation_name, rows) in enumerate(batches, start=1):
            if self.crash_at is not None and number == self.crash_at:
                raise SimulatedCrash(
                    f"injected crash before batch {number}/{len(batches)}"
                )
            self.engine.ingest_batch(relation_name, rows)
            self.batches_applied += 1
            if self.store is not None and number % self.checkpoint_every == 0:
                self.store.save(self.engine)
        return self.batches_applied
