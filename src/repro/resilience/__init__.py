"""Fault tolerance for the continuous query engine.

The paper's continuous queries "run continuously" over unbounded
streams; at production timescales that means the engine must survive
process crashes, poisoned inputs, and misbehaving synopses without
losing weeks of one-scan state that can never be rebuilt.  This package
supplies the mechanisms, each independent and individually testable:

* **Checkpoints** (:mod:`~repro.resilience.checkpoint`): versioned,
  SHA-256-verified, atomically written engine snapshots with last-K
  rotation — ``engine.save_checkpoint(path)`` /
  ``StreamEngine.load_checkpoint(path)`` round-trip the exact tensors,
  registered queries, and every synopsis state bit-for-bit.
* **Observer fault isolation** (wired in
  :mod:`repro.streams.engine`): a synopsis observer that raises is
  quarantined instead of aborting ingest; its queries degrade and
  surface :class:`~repro.resilience.errors.DegradedQueryError`.
* **Dead-letter ingest** (:mod:`~repro.resilience.deadletter`): rows
  with wrong arity, NaN/inf, or out-of-domain values are rejected into
  a bounded ring with drop accounting instead of corrupting a batch.
* **Command journal** (:mod:`~repro.resilience.journal`): the
  append-before-dispatch log a :class:`~repro.fleet.supervisor.ShardSupervisor`
  replays on top of a restored checkpoint, making a restarted shard
  answer-identical to one that never crashed.
* **Retry with backoff** (:mod:`~repro.resilience.retry`): capped
  exponential backoff with optional full jitter and an overall deadline
  for transient I/O failures, counted in ``repro_retries_total``.
* **Chaos harness** (:mod:`~repro.resilience.chaos`): deterministic
  fault injectors (flaky observers, failing filesystems, crash-at-N)
  powering the ``tests/resilience`` suite's recovery properties.
"""

from .chaos import (
    ChaosError,
    CrashingIngest,
    FailingFilesystem,
    FlakyIO,
    FlakyObserver,
    SimulatedCrash,
)
from .checkpoint import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from .deadletter import DeadLetter, DeadLetterBuffer, ReplayReport, validate_rows
from .errors import (
    CheckpointError,
    CheckpointIntegrityError,
    DegradedQueryError,
    ResilienceError,
)
from .journal import CommandJournal, JournalEntry
from .retry import RetryPolicy, retry_io

__all__ = [
    "ChaosError",
    "CrashingIngest",
    "FailingFilesystem",
    "FlakyIO",
    "FlakyObserver",
    "SimulatedCrash",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "CheckpointStore",
    "read_checkpoint",
    "write_checkpoint",
    "DeadLetter",
    "DeadLetterBuffer",
    "ReplayReport",
    "validate_rows",
    "CommandJournal",
    "JournalEntry",
    "CheckpointError",
    "CheckpointIntegrityError",
    "DegradedQueryError",
    "ResilienceError",
    "RetryPolicy",
    "retry_io",
]
