"""Typed errors for the fault-tolerance layer.

Every failure mode the resilience subsystem can surface has its own
exception class, so callers can distinguish "the checkpoint file is
corrupt" from "this query lost a synopsis" without string matching.
All of them derive from :class:`ResilienceError`.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "CheckpointError",
    "CheckpointIntegrityError",
    "DegradedQueryError",
]


class ResilienceError(Exception):
    """Base class for all fault-tolerance errors."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, read, or applied."""


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint file failed its integrity verification.

    Raised when the header is malformed, the format version is
    unsupported, the payload is truncated, or the payload bytes do not
    hash to the SHA-256 digest recorded in the header.  A checkpoint
    that raises this must never be applied to an engine.
    """


class DegradedQueryError(ResilienceError):
    """A query's estimate was requested after one of its synopses was
    quarantined.

    A degraded query's synopsis state is no longer guaranteed to track
    the stream (the faulting observer was detached mid-stream), so under
    the default ``degraded_policy="raise"`` the engine refuses to serve
    a silently wrong estimate.  The query name and quarantine reason are
    carried so operators can decide whether to re-register the query or
    fall back to exact evaluation.
    """

    def __init__(self, query: str, reason: str) -> None:
        self.query = query
        self.reason = reason
        super().__init__(
            f"query {query!r} is degraded (a synopsis observer was "
            f"quarantined: {reason}); re-register the query or use a "
            "fallback degraded_policy"
        )
