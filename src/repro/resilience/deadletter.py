"""Ingest validation and the bounded dead-letter buffer.

The engine's batched ingest applies one vectorized scatter-add per
batch; a single malformed row (wrong arity, NaN/inf, a value outside
the declared domain) used to abort the whole batch with the exact
tensor already partially... no — worse, with *nothing* applied but the
stream position lost, because the producer has no way to know which row
was poisoned.  With dead-lettering enabled the engine validates rows
up front, ingests the clean remainder, and parks every rejected row in
a bounded ring (:class:`DeadLetterBuffer`) with its rejection reason,
so poisoned inputs are quarantined and *observable* instead of fatal.

The buffer is a fixed-capacity ring: when full, the oldest entry is
evicted and counted in :attr:`DeadLetterBuffer.dropped` — unbounded
queues are how poison streams take whole processes down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Protocol, Sequence

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..streams.relation import StreamRelation

__all__ = ["DeadLetter", "DeadLetterBuffer", "ReplayReport", "validate_rows"]

#: Rejection reasons, stable strings used as metric label values.
REASON_ARITY = "arity"
REASON_NON_FINITE = "non_finite"
REASON_OUT_OF_DOMAIN = "out_of_domain"


@dataclass(frozen=True)
class DeadLetter:
    """One rejected row: where it was headed, what it was, and why."""

    relation: str
    row: tuple[Any, ...]
    kind: str
    reason: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "relation": self.relation,
            "row": list(self.row),
            "kind": self.kind,
            "reason": self.reason,
        }


class _ReplayTarget(Protocol):  # pragma: no cover - typing only
    """What :meth:`DeadLetterBuffer.replay` needs from an engine.

    Both :class:`~repro.streams.engine.StreamEngine` and
    :class:`~repro.sharding.engine.ShardedStreamEngine` satisfy it: a
    batch-ingest entry point plus an active ``dead_letters`` buffer so
    rows that are *still* invalid are re-parked instead of raising.
    """

    dead_letters: "DeadLetterBuffer | None"

    def ingest_batch(self, relation_name: str, rows: Any, kind: Any) -> None: ...


@dataclass
class ReplayReport:
    """Outcome of one :meth:`DeadLetterBuffer.replay` pass."""

    attempted: int = 0
    ingested: int = 0
    still_dead: int = 0
    by_relation: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "attempted": self.attempted,
            "ingested": self.ingested,
            "still_dead": self.still_dead,
            "by_relation": dict(self.by_relation),
        }


class DeadLetterBuffer:
    """A bounded ring of rejected rows with eviction accounting.

    ``total`` counts every rejection ever recorded; ``dropped`` counts
    the entries evicted because the ring was full.  ``len(buffer)`` is
    the number currently held (at most ``capacity``).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[DeadLetter] = deque()
        self.total = 0
        self.dropped = 0

    def add(self, letter: DeadLetter) -> None:
        """Record one rejected row, evicting the oldest entry if full."""
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.dropped += 1
        self._ring.append(letter)
        self.total += 1

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._ring)

    def tail(self, n: int = 10) -> list[DeadLetter]:
        """The most recent ``n`` entries, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self) -> None:
        """Drop all held entries (counters are preserved)."""
        self._ring.clear()

    def replay(self, engine: "_ReplayTarget") -> ReplayReport:
        """Drain the buffer back through ``engine``'s validated ingest.

        Every held row is re-submitted to ``engine.ingest_batch`` in
        original rejection order, grouped into maximal consecutive runs
        with the same ``(relation, kind)`` so relative ordering — which
        sample/sketch state depends on — is preserved.  The engine
        re-validates: rows that are now clean (the operator widened a
        domain, replay targets a corrected engine, an upstream producer
        bug was fixed) are ingested; rows that are still malformed land
        back in the engine's dead-letter buffer (counted again in
        ``total``, like any rejection).  Returns a
        :class:`ReplayReport`; on partial success the still-bad rows
        remain buffered for the next attempt.

        ``engine`` must have dead-lettering enabled — replaying known-bad
        rows through an unguarded ingest path would abort mid-batch.
        """
        buffer = engine.dead_letters
        if buffer is None:
            raise ValueError(
                "replay target must have dead-lettering enabled "
                "(call enable_dead_lettering() first)"
            )
        from ..streams.tuples import OpKind

        letters = list(self._ring)
        self._ring.clear()
        report = ReplayReport(attempted=len(letters))
        if not letters:
            return report
        redeposited_before = buffer.total
        start = 0
        for i in range(1, len(letters) + 1):
            boundary = i == len(letters) or (
                (letters[i].relation, letters[i].kind)
                != (letters[start].relation, letters[start].kind)
            )
            if not boundary:
                continue
            run = letters[start:i]
            start = i
            kind = OpKind.DELETE if run[0].kind == "delete" else OpKind.INSERT
            engine.ingest_batch(run[0].relation, [letter.row for letter in run], kind)
        report.still_dead = buffer.total - redeposited_before
        report.ingested = report.attempted - report.still_dead
        attempts: dict[str, int] = {}
        for letter in letters:
            attempts[letter.relation] = attempts.get(letter.relation, 0) + 1
        returned: dict[str, int] = {}
        if report.still_dead:
            for letter in list(buffer)[-report.still_dead :]:
                returned[letter.relation] = returned.get(letter.relation, 0) + 1
        report.by_relation = {
            name: attempts[name] - returned.get(name, 0) for name in attempts
        }
        return report

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot (held entries plus accounting)."""
        return {
            "capacity": self.capacity,
            "held": len(self._ring),
            "total": self.total,
            "dropped": self.dropped,
            "tail": [letter.as_dict() for letter in self.tail(10)],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeadLetterBuffer(held={len(self._ring)}/{self.capacity}, "
            f"total={self.total}, dropped={self.dropped})"
        )


def _row_tuple(row: Any) -> tuple[Any, ...]:
    if np.isscalar(row):
        return (row,)
    return tuple(np.asarray(row).tolist()) if isinstance(row, np.ndarray) else tuple(row)


def _finite_mask(arr: NDArray[Any]) -> NDArray[Any]:
    """Per-row all-finite mask; non-numeric dtypes are vacuously finite."""
    if np.issubdtype(arr.dtype, np.floating):
        return np.asarray(np.isfinite(arr).all(axis=1), dtype=bool)
    if arr.dtype == object:
        def ok(v: Any) -> bool:
            return not (isinstance(v, float) and not np.isfinite(v))

        return np.array([all(ok(v) for v in row) for row in arr], dtype=bool)
    return np.ones(arr.shape[0], dtype=bool)


def validate_rows(
    relation: "StreamRelation", rows: Sequence[Any] | NDArray[Any]
) -> tuple[NDArray[Any], list[tuple[tuple[Any, ...], str]]]:
    """Split a raw batch into (clean rows, rejected rows with reasons).

    Checks, in order: arity (one value per attribute), finiteness
    (NaN/inf are rejected before they can reach the exact tensor's
    integer scatter-add), and domain membership per attribute.  The
    clean array preserves input order and is safe to hand to
    :meth:`StreamRelation.insert_rows` / ``delete_rows`` unchanged.
    """
    ndim = relation.ndim
    arr: NDArray[Any] | None
    try:
        arr = np.asarray(rows)
    except ValueError:  # ragged nested sequences refuse to coerce at all
        arr = None
    if (
        arr is not None
        and arr.dtype != object
        and (arr.ndim == 2 and arr.shape[1] == ndim or (arr.ndim == 1 and ndim == 1))
    ):
        if arr.ndim == 1:
            arr = arr[:, None]
        rejects: list[tuple[tuple[Any, ...], str]] = []
        keep = _finite_mask(arr)
        for row in arr[~keep]:
            rejects.append((_row_tuple(row), REASON_NON_FINITE))
        candidate = arr[keep]
        domain_ok = np.ones(candidate.shape[0], dtype=bool)
        for j, domain in enumerate(relation.domains):
            domain_ok &= domain.contains(candidate[:, j])
        for row in candidate[~domain_ok]:
            rejects.append((_row_tuple(row), REASON_OUT_OF_DOMAIN))
        return candidate[domain_ok], rejects

    # Ragged / mixed-type input: fall back to per-row normalization.
    source = rows if arr is None or arr.ndim == 0 else arr
    row_list = [_row_tuple(row) for row in source]
    rejects = []
    good: list[tuple[Any, ...]] = []
    for row in row_list:
        if len(row) != ndim:
            rejects.append((row, REASON_ARITY))
        else:
            good.append(row)
    if not good:
        return np.empty((0, ndim), dtype=np.int64), rejects
    good_arr = np.asarray(good)
    if good_arr.dtype == object or good_arr.ndim != 2:
        good_arr = np.empty((len(good), ndim), dtype=object)
        for i, row in enumerate(good):
            for j, value in enumerate(row):
                good_arr[i, j] = value
    keep = _finite_mask(good_arr)
    for row in good_arr[~keep]:
        rejects.append((_row_tuple(row), REASON_NON_FINITE))
    candidate = good_arr[keep]
    domain_ok = np.ones(candidate.shape[0], dtype=bool)
    for j, domain in enumerate(relation.domains):
        domain_ok &= domain.contains(candidate[:, j])
    for row in candidate[~domain_ok]:
        rejects.append((_row_tuple(row), REASON_OUT_OF_DOMAIN))
    return candidate[domain_ok], rejects
