"""Ingest validation and the bounded dead-letter buffer.

The engine's batched ingest applies one vectorized scatter-add per
batch; a single malformed row (wrong arity, NaN/inf, a value outside
the declared domain) used to abort the whole batch with the exact
tensor already partially... no — worse, with *nothing* applied but the
stream position lost, because the producer has no way to know which row
was poisoned.  With dead-lettering enabled the engine validates rows
up front, ingests the clean remainder, and parks every rejected row in
a bounded ring (:class:`DeadLetterBuffer`) with its rejection reason,
so poisoned inputs are quarantined and *observable* instead of fatal.

The buffer is a fixed-capacity ring: when full, the oldest entry is
evicted and counted in :attr:`DeadLetterBuffer.dropped` — unbounded
queues are how poison streams take whole processes down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..streams.relation import StreamRelation

__all__ = ["DeadLetter", "DeadLetterBuffer", "validate_rows"]

#: Rejection reasons, stable strings used as metric label values.
REASON_ARITY = "arity"
REASON_NON_FINITE = "non_finite"
REASON_OUT_OF_DOMAIN = "out_of_domain"


@dataclass(frozen=True)
class DeadLetter:
    """One rejected row: where it was headed, what it was, and why."""

    relation: str
    row: tuple
    kind: str
    reason: str

    def as_dict(self) -> dict:
        return {
            "relation": self.relation,
            "row": list(self.row),
            "kind": self.kind,
            "reason": self.reason,
        }


class DeadLetterBuffer:
    """A bounded ring of rejected rows with eviction accounting.

    ``total`` counts every rejection ever recorded; ``dropped`` counts
    the entries evicted because the ring was full.  ``len(buffer)`` is
    the number currently held (at most ``capacity``).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[DeadLetter] = deque()
        self.total = 0
        self.dropped = 0

    def add(self, letter: DeadLetter) -> None:
        """Record one rejected row, evicting the oldest entry if full."""
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.dropped += 1
        self._ring.append(letter)
        self.total += 1

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._ring)

    def tail(self, n: int = 10) -> list[DeadLetter]:
        """The most recent ``n`` entries, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self) -> None:
        """Drop all held entries (counters are preserved)."""
        self._ring.clear()

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (held entries plus accounting)."""
        return {
            "capacity": self.capacity,
            "held": len(self._ring),
            "total": self.total,
            "dropped": self.dropped,
            "tail": [letter.as_dict() for letter in self.tail(10)],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeadLetterBuffer(held={len(self._ring)}/{self.capacity}, "
            f"total={self.total}, dropped={self.dropped})"
        )


def _row_tuple(row) -> tuple:
    if np.isscalar(row):
        return (row,)
    return tuple(np.asarray(row).tolist()) if isinstance(row, np.ndarray) else tuple(row)


def _finite_mask(arr: np.ndarray) -> np.ndarray:
    """Per-row all-finite mask; non-numeric dtypes are vacuously finite."""
    if np.issubdtype(arr.dtype, np.floating):
        return np.isfinite(arr).all(axis=1)
    if arr.dtype == object:
        def ok(v) -> bool:
            return not (isinstance(v, float) and not np.isfinite(v))

        return np.array([all(ok(v) for v in row) for row in arr], dtype=bool)
    return np.ones(arr.shape[0], dtype=bool)


def validate_rows(
    relation: "StreamRelation", rows: Sequence[Sequence] | np.ndarray
) -> tuple[np.ndarray, list[tuple[tuple, str]]]:
    """Split a raw batch into (clean rows, rejected rows with reasons).

    Checks, in order: arity (one value per attribute), finiteness
    (NaN/inf are rejected before they can reach the exact tensor's
    integer scatter-add), and domain membership per attribute.  The
    clean array preserves input order and is safe to hand to
    :meth:`StreamRelation.insert_rows` / ``delete_rows`` unchanged.
    """
    ndim = relation.ndim
    try:
        arr = np.asarray(rows)
    except ValueError:  # ragged nested sequences refuse to coerce at all
        arr = None
    structured = (
        arr is not None
        and arr.dtype != object
        and (arr.ndim == 2 and arr.shape[1] == ndim or (arr.ndim == 1 and ndim == 1))
    )
    if structured:
        if arr.ndim == 1:
            arr = arr[:, None]
        rejects: list[tuple[tuple, str]] = []
        keep = _finite_mask(arr)
        for row in arr[~keep]:
            rejects.append((_row_tuple(row), REASON_NON_FINITE))
        candidate = arr[keep]
        domain_ok = np.ones(candidate.shape[0], dtype=bool)
        for j, domain in enumerate(relation.domains):
            domain_ok &= domain.contains(candidate[:, j])
        for row in candidate[~domain_ok]:
            rejects.append((_row_tuple(row), REASON_OUT_OF_DOMAIN))
        return candidate[domain_ok], rejects

    # Ragged / mixed-type input: fall back to per-row normalization.
    source = rows if arr is None or arr.ndim == 0 else arr
    row_list = [_row_tuple(row) for row in source]
    rejects = []
    good: list[tuple] = []
    for row in row_list:
        if len(row) != ndim:
            rejects.append((row, REASON_ARITY))
        else:
            good.append(row)
    if not good:
        return np.empty((0, ndim), dtype=np.int64), rejects
    good_arr = np.asarray(good)
    if good_arr.dtype == object or good_arr.ndim != 2:
        good_arr = np.empty((len(good), ndim), dtype=object)
        for i, row in enumerate(good):
            for j, value in enumerate(row):
                good_arr[i, j] = value
    keep = _finite_mask(good_arr)
    for row in good_arr[~keep]:
        rejects.append((_row_tuple(row), REASON_NON_FINITE))
    candidate = good_arr[keep]
    domain_ok = np.ones(candidate.shape[0], dtype=bool)
    for j, domain in enumerate(relation.domains):
        domain_ok &= domain.contains(candidate[:, j])
    for row in candidate[~domain_ok]:
        rejects.append((_row_tuple(row), REASON_OUT_OF_DOMAIN))
    return candidate[domain_ok], rejects
