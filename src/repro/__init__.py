"""repro — cosine-series join size estimation over data streams.

A full reproduction of Jiang, Luo, Hou, Yan, Zhu & Wang, "Join Size
Estimation Over Data Streams Using Cosine Series" (IJIT 13(1), 2007),
including the paper's baselines (basic AGMS and skimmed sketches), the
sampling-estimator lineage of Hou et al. (PODS 1988), an equi-width
histogram baseline, synthetic and real-life-like workload generators, and
the complete section 5 experiment harness.

Quickstart::

    import numpy as np
    from repro import CosineSynopsis, Domain, estimate_join_size

    domain = Domain.of_size(1000)
    a = CosineSynopsis(domain, budget=64)
    b = CosineSynopsis(domain, budget=64)
    a.insert_batch(np.random.default_rng(0).integers(0, 1000, size=(5000, 1)))
    b.insert_batch(np.random.default_rng(1).integers(0, 1000, size=(5000, 1)))
    print(estimate_join_size(a, b))
"""

from .core import (
    CosineSynopsis,
    DecayedCosineSynopsis,
    Domain,
    SlidingWindowSynopsis,
    JoinPredicate,
    estimate_band_join_size,
    estimate_chain_join_size,
    estimate_decayed_join_size,
    estimate_inequality_join_size,
    estimate_join_size,
    estimate_selected_join_size,
    estimate_multijoin_size,
    estimate_point_count,
    estimate_range_count,
    estimate_self_join_size,
    estimate_theta_join_size,
    synopses_for_budget,
    unify_domains,
)
from .obs import Telemetry
from .streams import (
    ContinuousQueryEngine,
    JoinQuery,
    StreamEngine,
    StreamRelation,
    exact_join_size,
    exact_multijoin_size,
    relative_error,
)

__version__ = "1.10.0"

__all__ = [
    "CosineSynopsis",
    "DecayedCosineSynopsis",
    "Domain",
    "SlidingWindowSynopsis",
    "JoinPredicate",
    "estimate_band_join_size",
    "estimate_decayed_join_size",
    "estimate_inequality_join_size",
    "estimate_selected_join_size",
    "estimate_theta_join_size",
    "estimate_chain_join_size",
    "estimate_join_size",
    "estimate_multijoin_size",
    "estimate_point_count",
    "estimate_range_count",
    "estimate_self_join_size",
    "synopses_for_budget",
    "unify_domains",
    "ContinuousQueryEngine",
    "JoinQuery",
    "StreamEngine",
    "StreamRelation",
    "Telemetry",
    "exact_join_size",
    "exact_multijoin_size",
    "relative_error",
    "__version__",
]
