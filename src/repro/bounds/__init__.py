"""Pessimistic upper bounds: guaranteed-sound join-size estimation.

The paper's synopses (and every baseline around them) produce *point
estimates* with probabilistic error — nothing stops a sketch from
answering 10x the true join size on an unlucky stream.  This package
adds the bounds-literature counterpart (Abo Khamis & Olteanu's Lp-norm
degree-sequence bounds, the UES max-degree bound, AGM-style covers):
statistics that are cheap to maintain incrementally and yield join-size
*upper bounds that provably always hold*, plus a clamp combining the
two — a point estimate that can never exceed a sound bound.

Three layers:

* :class:`~repro.bounds.degree.DegreeSketch` /
  :class:`~repro.bounds.degree.DegreeObserver` — per join-attribute
  frequency (degree) vectors maintained under inserts and deletes,
  exposing max-degree and general Lp norms.  The state is a *linear*
  function of the stream multiset, so per-shard copies merge exactly
  (see :mod:`repro.sharding.merge`).
* :class:`~repro.bounds.calculator.JoinBoundCalculator` — turns the
  degree vectors of an n-ary equi-join's attributes into the minimum of
  a family of provably sound upper bounds (spanning-tree max-degree
  products with a Hölder Lp/Lq refinement on one edge).
* :class:`~repro.bounds.clamp.ClampedEstimator` — wraps any registered
  query of any estimation method so its answer is
  ``min(estimate, upper_bound)``.

Engine surface: ``register_query(..., bounds=True)`` attaches the
observers, and ``StreamEngine.estimate(name, mode=...)`` serves the
``"answer"`` / ``"upper_bound"`` / ``"clamped"`` modes (mirrored by
:class:`~repro.sharding.ShardedStreamEngine` and the fleet serve
daemon).  See ``docs/BOUNDS.md`` for the soundness contract.
"""

from .calculator import HOLDER_PAIRS, JoinBoundCalculator
from .clamp import ClampedEstimator
from .degree import DegreeObserver, DegreeSketch

__all__ = [
    "HOLDER_PAIRS",
    "ClampedEstimator",
    "DegreeObserver",
    "DegreeSketch",
    "JoinBoundCalculator",
]
