"""Streaming degree-sequence statistics for one join attribute.

A *degree sequence* of relation ``R`` on attribute ``A`` is the
multiset of frequencies ``{ |σ_{A=v}(R)| : v ∈ dom(A) }``.  Join-size
upper bounds (UES max-degree products, AGM covers, and the Lp-norm
bounds of Abo Khamis & Olteanu) are all functions of a few norms of
these sequences — ``L∞`` (the max degree), ``L1`` (the relation
cardinality), ``L2``, and general ``Lp``.

:class:`DegreeSketch` keeps the *exact* frequency vector over the
attribute's unified domain as an ``int64`` array and computes norms on
read.  Exactness matters twice over:

* the derived bounds are guaranteed sound (no sketch error term to
  carry through the proofs), and
* the state is a linear function of the input multiset, so per-shard
  vectors sum to exactly the unsharded vector under
  :func:`repro.sharding.merge.merge_observer_states` — the merged
  bound is *identical* to the single-engine bound, not merely sound.

:class:`DegreeObserver` is the :class:`~repro.streams.relation.StreamObserver`
adapter feeding a sketch from a relation's insert/delete stream.
"""

from __future__ import annotations

import math
from typing import Any, Dict

import numpy as np
from numpy.typing import NDArray

from ..streams.relation import StreamObserver
from ..streams.tuples import OpKind, StreamOp

__all__ = ["DegreeObserver", "DegreeSketch"]


class DegreeSketch:
    """Exact frequency (degree) vector over one attribute's unified domain.

    ``freq[i]`` is the current multiplicity of domain index ``i`` in the
    observed stream: inserts add 1, deletes subtract 1.  ``freq.sum()``
    is therefore the live relation cardinality.  All norms are computed
    on read from the current vector, so they are exact for the live
    multiset at any point of an insert/delete stream.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"domain size must be positive, got {size}")
        self.freq = np.zeros(size, dtype=np.int64)

    # -- updates -------------------------------------------------------

    def update(self, index: int, weight: int) -> None:
        """Apply one op: ``weight`` is ``+1`` (insert) or ``-1`` (delete)."""
        self.freq[index] += weight

    def update_batch(self, indices: NDArray[Any], weight: int) -> None:
        """Apply a batch of same-kind ops given their domain indices."""
        if indices.size == 0:
            return
        counts = np.bincount(indices, minlength=self.freq.shape[0])
        if weight == 1:
            self.freq += counts
        else:
            self.freq -= counts

    def load_counts(self, counts: NDArray[Any]) -> None:
        """Replace the vector with an externally computed frequency vector.

        Used at registration time to fold in rows ingested before the
        observer was attached (the engine marginalizes its exact count
        tensor onto this attribute's axis).
        """
        if counts.shape != self.freq.shape:
            raise ValueError(
                f"counts shape {counts.shape} != sketch shape {self.freq.shape}"
            )
        self.freq = np.asarray(counts, dtype=np.int64).copy()

    # -- norms ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Live relation cardinality (== L1 of the degree sequence)."""
        return int(self.freq.sum())

    @property
    def max_degree(self) -> int:
        """L∞ norm: the largest multiplicity of any single value."""
        if self.freq.size == 0:
            return 0
        return int(self.freq.max())

    @property
    def l1(self) -> int:
        return self.count

    @property
    def l2(self) -> float:
        """L2 norm of the degree sequence (sqrt of the self-join size)."""
        vec = self.freq.astype(np.float64)
        return float(math.sqrt(float(np.dot(vec, vec))))

    def lp(self, p: float) -> float:
        """General Lp norm, ``p >= 1``; ``p = inf`` gives the max degree."""
        if p < 1:
            raise ValueError(f"Lp norms require p >= 1, got {p}")
        if math.isinf(p):
            return float(self.max_degree)
        if p == 1:
            return float(self.l1)
        vec = self.freq.astype(np.float64)
        total = float(np.power(vec, p).sum())
        return float(total ** (1.0 / p))

    # -- state ---------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {"freq": self.freq.copy()}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.load_counts(state["freq"])


class DegreeObserver(StreamObserver):
    """Feeds a :class:`DegreeSketch` from one relation's op stream.

    One observer per (relation, join-attribute) pair; ``axis`` is the
    attribute's position in the relation schema and ``domain`` the
    *unified* domain for that join slot, so sketches on both sides of a
    predicate index the same value space.
    """

    # Structural fields are rebuilt from the query spec at registration;
    # only the frequency vector (reached through ``sketch``) is
    # checkpoint state.
    _checkpoint_exempt = ("domain", "axis")

    # register_query attributes per-observer time to the query's method;
    # degree maintenance is bounds work regardless of method, so flag it
    # for separate attribution in the ingest stats.
    is_bound_observer = True

    def __init__(self, sketch: DegreeSketch, domain: Any, axis: int) -> None:
        self.sketch = sketch
        self.domain = domain
        self.axis = axis

    def on_op(self, relation: Any, op: StreamOp) -> None:
        index = self.domain.index_of(op.values[self.axis])
        self.sketch.update(index, op.weight)

    def on_ops(self, relation: Any, rows: NDArray[Any], kind: OpKind) -> None:
        if len(rows) == 0:
            return
        indices = self.domain.indices_of(rows[:, self.axis])
        self.sketch.update_batch(indices, kind.value)

    def state_dict(self) -> Dict[str, Any]:
        return self.sketch.state_dict()

    def load_state(self, state: Dict[str, Any]) -> None:
        self.sketch.load_state(state)
