"""Guaranteed upper bounds on n-ary equi-join sizes from degree norms.

Given the engine's join spec — relations as vertices, equi-join
predicates as edges of a join graph — and one :class:`DegreeSketch`
per (relation, join-attribute) slot, :class:`JoinBoundCalculator`
derives an upper bound on the exact join size that holds for *every*
database consistent with the observed degree statistics.

The bound is the minimum of a family of individually sound candidates,
built per connected component of the join graph:

* **Spanning-tree max-degree bound** (the UES shape).  Pick a root
  relation ``r`` and a BFS spanning tree.  By induction on subtrees,

  ``|join| <= N_r * prod_{v != r} maxdeg_v(axis_v)``

  where ``axis_v`` is the attribute connecting ``v`` to its parent:
  each tuple of the partial join extends to at most ``maxdeg_v``
  tuples of ``v``.  Dropping non-tree predicates only enlarges the
  join, so the tree bound holds for the full cyclic query too.

* **Hölder Lp/Lq refinement** (Abo Khamis & Olteanu's degree-sequence
  bounds, specialised to one edge).  For a root edge ``r —A— c``,

  ``|R ⋈_A C| = sum_v deg_R(v) * deg_C(v) <= L_p(deg_R) * L_q(deg_C)``

  for any Hölder pair ``1/p + 1/q = 1``; the remaining tree relations
  still contribute their max-degree factors.  ``(p, q) = (1, ∞)``
  recovers the max-degree bound and ``(2, 2)`` is Cauchy–Schwarz
  (``L2(R) * L2(C)`` — exactly the self-join-size bound).

Components multiply (their joins are independent cartesian factors),
relations with no predicate contribute their cardinality ``N``, and
self-loop predicates (both slots on one relation) are dropped —
dropping a filter is always sound.

Every candidate is a product of degree-sequence norms, each of which is
nondecreasing under inserts; the candidate *set* depends only on the
query structure.  The bound — a min over a fixed set of nondecreasing
terms — is therefore monotone on insert-only streams, which the
hypothesis suite (``tests/bounds/test_soundness.py``) enforces.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from .degree import DegreeSketch

__all__ = ["HOLDER_PAIRS", "JoinBoundCalculator"]

#: Slot identifier: (relation position in the query, attribute axis).
Slot = Tuple[int, int]
#: One equi-join predicate: a pair of slots constrained to be equal.
Edge = Tuple[Slot, Slot]

#: Hölder-conjugate exponent pairs tried on the root edge of each
#: spanning tree.  (1, inf) reproduces the plain max-degree bound and
#: (2, 2) is Cauchy–Schwarz; the asymmetric pairs win when one side is
#: skewed and the other near-uniform.
HOLDER_PAIRS: Tuple[Tuple[float, float], ...] = (
    (1.0, math.inf),
    (1.5, 3.0),
    (2.0, 2.0),
    (3.0, 1.5),
    (math.inf, 1.0),
)


class JoinBoundCalculator:
    """Derives upper bounds for one registered join query.

    Parameters
    ----------
    num_relations:
        Number of relations in the query (vertices ``0..n-1``).
    edges:
        Equi-join predicates as ``((rel_a, axis_a), (rel_b, axis_b))``
        slot pairs (the engine's ``JoinQuery.slot_pairs`` format).
        Self-loops are dropped: a same-relation equality only filters,
        so ignoring it keeps every candidate sound.
    sketches:
        Live :class:`DegreeSketch` per slot.  Every relation must have
        at least one sketch (unjoined relations carry a count-only
        sketch on axis 0 so their cardinality is available).
    """

    def __init__(
        self,
        num_relations: int,
        edges: Sequence[Edge],
        sketches: Mapping[Slot, DegreeSketch],
    ) -> None:
        if num_relations <= 0:
            raise ValueError("a join bound needs at least one relation")
        self.num_relations = num_relations
        self.edges: List[Edge] = [
            (a, b) for a, b in edges if a[0] != b[0]
        ]
        self.sketches: Dict[Slot, DegreeSketch] = dict(sketches)
        for rel in range(num_relations):
            if not any(slot[0] == rel for slot in self.sketches):
                raise ValueError(f"relation {rel} has no degree sketch")
        for a, b in self.edges:
            for slot in (a, b):
                if slot not in self.sketches:
                    raise ValueError(f"predicate slot {slot} has no degree sketch")
        # Adjacency: rel -> [(neighbor, axis_here, axis_there)], in
        # deterministic (sorted) order so every engine replica walks
        # identical spanning trees.
        adjacency: Dict[int, List[Tuple[int, int, int]]] = {
            rel: [] for rel in range(num_relations)
        }
        for (rel_a, ax_a), (rel_b, ax_b) in self.edges:
            adjacency[rel_a].append((rel_b, ax_a, ax_b))
            adjacency[rel_b].append((rel_a, ax_b, ax_a))
        for neighbors in adjacency.values():
            neighbors.sort()
        self._adjacency = adjacency

    # ------------------------------------------------------------------ #

    def _cardinality(self, rel: int) -> int:
        """Live tuple count of one relation (L1 of any of its sketches)."""
        for slot, sketch in self.sketches.items():
            if slot[0] == rel:
                return sketch.count
        raise AssertionError(f"relation {rel} has no degree sketch")

    def _components(self) -> List[List[int]]:
        """Connected components of the join graph, in vertex order."""
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in range(self.num_relations):
            if start in seen:
                continue
            component = [start]
            seen.add(start)
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor, _, _ in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component.append(neighbor)
                        frontier.append(neighbor)
            components.append(sorted(component))
        return components

    def _spanning_tree(self, root: int) -> Dict[int, List[Tuple[int, int, int]]]:
        """BFS spanning tree from ``root``.

        Returns, for each non-root vertex, the list of *parallel* edges
        linking it to its BFS parent as ``(parent, axis_parent,
        axis_child)`` triples (a relation pair may be joined on several
        attribute pairs; any one of them yields a sound degree factor,
        so the calculator gets to take the min over them).
        """
        parent: Dict[int, int] = {root: root}
        order: List[int] = [root]
        queue: List[int] = [root]
        while queue:
            node = queue.pop(0)
            for neighbor, _, _ in self._adjacency[node]:
                if neighbor not in parent:
                    parent[neighbor] = node
                    order.append(neighbor)
                    queue.append(neighbor)
        links: Dict[int, List[Tuple[int, int, int]]] = {}
        for node in order[1:]:
            links[node] = [
                (parent[node], ax_there, ax_here)
                for neighbor, ax_here, ax_there in self._adjacency[node]
                if neighbor == parent[node]
            ]
        return links

    def _component_bound(self, component: Sequence[int]) -> float:
        """Minimum over root choices and Hölder pairs for one component."""
        if len(component) == 1 and not self._adjacency[component[0]]:
            return float(self._cardinality(component[0]))
        best = math.inf
        for root in component:
            links = self._spanning_tree(root)
            # Per non-root vertex: min over parallel parent edges of the
            # child-side max degree (each single edge is itself sound).
            delta: Dict[int, float] = {}
            for node, parallel in links.items():
                delta[node] = min(
                    float(self.sketches[(node, ax_child)].max_degree)
                    for _, _, ax_child in parallel
                )
            base = float(self._cardinality(root))
            for node in links:
                base *= delta[node]
            best = min(best, base)
            # Hölder refinement on each root->child edge: replace
            # N_root * maxdeg_child with L_p(root) * L_q(child).
            for child, parallel in links.items():
                if parallel[0][0] != root:
                    continue
                rest = 1.0
                for node in links:
                    if node != child:
                        rest *= delta[node]
                for _, ax_root, ax_child in parallel:
                    root_sketch = self.sketches[(root, ax_root)]
                    child_sketch = self.sketches[(child, ax_child)]
                    for p, q in HOLDER_PAIRS:
                        candidate = root_sketch.lp(p) * child_sketch.lp(q) * rest
                        best = min(best, candidate)
        return best

    # ------------------------------------------------------------------ #

    def upper_bound(self) -> float:
        """A join-size upper bound that provably always holds.

        The product over connected components of each component's best
        candidate.  Exact-zero components (an empty relation, or a
        max degree of zero along every tree) zero the whole bound, which
        is correct: the join is empty.
        """
        bound = 1.0
        for component in self._components():
            bound *= self._component_bound(component)
            if bound <= 0.0:
                return 0.0
        return bound
