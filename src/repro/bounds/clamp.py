"""Clamped ensembles: a point estimate that never exceeds a sound bound.

:class:`ClampedEstimator` combines any of the engine's estimation
methods with the degree-sequence upper bound attached to the same
query: its :meth:`~ClampedEstimator.answer` is
``min(estimate, upper_bound)``.  The estimate carries the paper's
probabilistic accuracy; the bound carries a worst-case guarantee; the
clamp inherits both — it is never *worse* than the bound and usually
as good as the estimate.

The wrapper is engine-agnostic: anything exposing the
``estimate(name, mode=...)`` / ``bound_report(name)`` surface works,
which covers :class:`~repro.streams.engine.StreamEngine` and
:class:`~repro.sharding.engine.ShardedStreamEngine` alike.
"""

from __future__ import annotations

from typing import Dict, Protocol

__all__ = ["BoundedEngine", "ClampedEstimator"]


class BoundedEngine(Protocol):
    """The estimation surface a clamped estimator needs from an engine."""

    def estimate(self, name: str, mode: str = "answer") -> float:
        ...  # pragma: no cover - protocol

    def bound_report(self, name: str) -> Dict[str, object] | None:
        ...  # pragma: no cover - protocol


class ClampedEstimator:
    """Answers one registered query as ``min(estimate, upper_bound)``.

    The query must have been registered with ``bounds=True`` so the
    engine maintains degree statistics for it; wrapping a bound-less
    query raises immediately rather than silently degrading to an
    unclamped estimate.
    """

    def __init__(self, engine: BoundedEngine, name: str) -> None:
        if engine.bound_report(name) is None:
            raise ValueError(
                f"query {name!r} was not registered with bounds=True; "
                "a clamped estimator needs degree statistics to clamp against"
            )
        self.engine = engine
        self.name = name

    def answer(self) -> float:
        """``min(estimate, upper_bound)`` for the live stream state."""
        return self.engine.estimate(self.name, mode="clamped")

    def estimate(self) -> float:
        """The unclamped point estimate of the wrapped method."""
        return self.engine.estimate(self.name, mode="answer")

    def upper_bound(self) -> float:
        """The guaranteed join-size upper bound."""
        return self.engine.estimate(self.name, mode="upper_bound")

    def report(self) -> Dict[str, object]:
        """Full bound metadata: estimate, bound, clamped value, clamp flag."""
        report = self.engine.bound_report(self.name)
        assert report is not None  # checked at construction
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClampedEstimator({self.name!r})"
