"""Sampling-based join size estimators (Hou et al. 1988 lineage).

The COUNT estimator for a join of independently sampled streams is the
scaled sample cross-product:

    J_hat = |S1 join S2| / (p1 * p2)                (Bernoulli samples)
    J_hat = |S1 join S2| * (N1 N2) / (k1 k2)        (reservoir samples)

The Bernoulli form is exactly unbiased (E[s1(v)] = p1 f1(v) with
independent samples); the reservoir form is the standard consistent
estimator.  A normal-approximation confidence interval is provided from the
per-value variance decomposition of the cross-product statistic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .reservoir import BernoulliSample, ReservoirSample


@dataclass(frozen=True)
class SampleJoinEstimate:
    """A sampling join estimate with a normal-approximation interval."""

    estimate: float
    std_error: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Approximate two-sided CI; default ``z`` = 95%."""
        return (self.estimate - z * self.std_error, self.estimate + z * self.std_error)


def _sample_cross_count(a: Counter[Any], b: Counter[Any]) -> float:
    """``sum_v a(v) * b(v)`` iterating the smaller counter."""
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    return float(sum(c * large.get(v, 0) for v, c in small.items()))


def estimate_join_size_bernoulli(a: BernoulliSample, b: BernoulliSample) -> SampleJoinEstimate:
    """Unbiased join size estimate from two independent Bernoulli samples."""
    scale = 1.0 / (a.probability * b.probability)
    cross = _sample_cross_count(a.counts, b.counts)
    estimate = cross * scale
    # Var[s1(v) s2(v)] for independent binomial thinnings, summed over the
    # sampled support, gives a plug-in variance for the scaled statistic.
    var = 0.0
    for v, ca in a.counts.items():
        cb = b.counts.get(v, 0)
        if cb == 0:
            continue
        # plug-in frequencies
        fa, fb = ca / a.probability, cb / b.probability
        var += (
            fa * fb * (1 - a.probability) * (1 - b.probability)
            + fa * fb**2 * a.probability * (1 - a.probability)
            + fb * fa**2 * b.probability * (1 - b.probability)
        ) / (a.probability * b.probability)
    return SampleJoinEstimate(estimate=estimate, std_error=float(np.sqrt(max(var, 0.0))))


def estimate_join_size_reservoir(a: ReservoirSample, b: ReservoirSample) -> SampleJoinEstimate:
    """Join size estimate from two reservoir samples."""
    ka, kb = a.sampled_size, b.sampled_size
    if ka == 0 or kb == 0:
        return SampleJoinEstimate(estimate=0.0, std_error=0.0)
    scale = (a.stream_size * b.stream_size) / (ka * kb)
    cross = _sample_cross_count(a.value_counts(), b.value_counts())
    estimate = cross * scale
    # Crude plug-in standard error: treat the cross count as a sum of
    # cross-matches with binomial-like dispersion.
    std_error = scale * float(np.sqrt(max(cross, 1.0)))
    return SampleJoinEstimate(estimate=estimate, std_error=std_error)


def estimate_chain_join_size_samples(
    samples: Sequence[BernoulliSample],
    sample_tuples: Sequence[Counter[Any]],
) -> float:
    """Chain multi-join estimate from per-relation Bernoulli samples.

    ``sample_tuples[i]`` maps sampled tuples (as value tuples; inner
    relations have two attributes) to multiplicities.  The estimate is the
    exact chain join of the samples scaled by ``1 / prod_i p_i``.
    """
    if len(samples) != len(sample_tuples):
        raise ValueError("one tuple counter per sample is required")
    if len(samples) < 2:
        raise ValueError("a chain join needs at least two relations")

    # Dynamic-programming pass over the chain: partial[v] is the number of
    # sample-tuple combinations ending with join value v.
    partial: Counter[Any] = Counter()
    for value, count in sample_tuples[0].items():
        key = value[-1] if isinstance(value, tuple) else value
        partial[key] += count
    for tuples in sample_tuples[1:-1]:
        nxt: Counter[Any] = Counter()
        for value, count in tuples.items():
            if not isinstance(value, tuple) or len(value) != 2:
                raise ValueError("inner relations of a chain must have two attributes")
            left, right = value
            if left in partial:
                nxt[right] += partial[left] * count
        partial = nxt
    total = 0
    for value, count in sample_tuples[-1].items():
        key = value[0] if isinstance(value, tuple) else value
        total += partial.get(key, 0) * count

    scale = 1.0
    for sample in samples:
        scale /= sample.probability
    return total * scale
