"""Stream sampling primitives: Bernoulli and reservoir samples.

Sampling is the oldest synopsis family the paper surveys (its references
[1, 14, 15, 22, 28]; [15] is Hou, Özsoyoğlu and Taneja's PODS 1988
"Statistical Estimators for Relational Algebra Expressions" — the titled
paper of this reproduction).  These classes provide the stream-side
machinery; :mod:`repro.sampling.estimators` builds join-size estimators on
top of them.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable, Sequence

import numpy as np
from numpy.typing import NDArray


class BernoulliSample:
    """Keep each arriving tuple independently with probability ``p``.

    The sample is stored as a value -> multiplicity counter, so its memory
    is bounded by the number of *distinct* sampled values.  Inclusion
    probabilities are exact and independent, which is what makes the
    cross-product join estimator unbiased.
    """

    def __init__(self, probability: float, seed: int | None = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"sampling probability must be in (0, 1], got {probability}")
        self.probability = probability
        self._rng = np.random.default_rng(seed)
        self.counts: Counter[Any] = Counter()
        self.sampled_size = 0
        self.stream_size = 0

    def insert(self, value: Hashable) -> None:
        """Offer one arriving tuple to the sample."""
        self.stream_size += 1
        if self._rng.random() < self.probability:
            self.counts[value] += 1
            self.sampled_size += 1

    def insert_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.insert(value)

    def insert_batch(self, values: Sequence[Hashable]) -> NDArray[Any]:
        """Offer a batch of tuples; returns the boolean acceptance mask.

        Draws all coins in one vectorized call.  Because numpy generators
        produce the same double stream whether drawn one at a time or in
        blocks, the kept set is *bit-identical* to offering each value via
        :meth:`insert` in order — batch and sequential ingestion agree
        exactly, not just in distribution.
        """
        values = list(values)
        if not values:
            return np.zeros(0, dtype=bool)
        mask = self._rng.random(len(values)) < self.probability
        self.stream_size += len(values)
        for value, keep in zip(values, mask):
            if keep:
                self.counts[value] += 1
        self.sampled_size += int(mask.sum())
        return mask

    def state_dict(self) -> dict[str, Any]:
        """Full mutable state, including the generator's bit state.

        Capturing ``bit_generator.state`` is what makes recovery exact:
        a restored sample flips the *same* coins for post-restore
        arrivals as the uncrashed original would have, so checkpointed
        and continuous runs stay bit-identical.
        """
        return {
            "probability": self.probability,
            "rng_state": self._rng.bit_generator.state,
            "counts": dict(self.counts),
            "sampled_size": self.sampled_size,
            "stream_size": self.stream_size,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`, in place.

        Mutates ``self.counts`` rather than replacing it, because the
        engine's estimate closures share the Counter object.
        """
        self.probability = float(state["probability"])
        self._rng.bit_generator.state = state["rng_state"]
        self.counts.clear()
        self.counts.update(state["counts"])
        self.sampled_size = int(state["sampled_size"])
        self.stream_size = int(state["stream_size"])

    def delete(self, value: Hashable) -> None:
        """Deletion is not supported by Bernoulli samples.

        Whether the deleted tuple is *in* the sample depends on a coin flip
        made at its arrival that the sample did not record; section 2 of the
        paper notes exactly this kind of difficulty for sampling under
        dynamic streams.
        """
        raise NotImplementedError(
            "Bernoulli samples cannot process deletions; this limitation is "
            "part of why the paper moves away from sampling for streams"
        )


class ReservoirSample:
    """Classic Algorithm-R reservoir of fixed capacity ``k``.

    Maintains a uniform without-replacement sample of everything seen so
    far, regardless of stream length.
    """

    def __init__(self, capacity: int, seed: int | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self.items: list[Hashable] = []
        self.stream_size = 0

    def insert(self, value: Hashable) -> None:
        """Offer one arriving tuple to the reservoir."""
        self.stream_size += 1
        if len(self.items) < self.capacity:
            self.items.append(value)
            return
        j = int(self._rng.integers(0, self.stream_size))
        if j < self.capacity:
            self.items[j] = value

    def insert_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.insert(value)

    @property
    def sampled_size(self) -> int:
        return len(self.items)

    def value_counts(self) -> Counter[Any]:
        """Multiplicities of the sampled values."""
        return Counter(self.items)
