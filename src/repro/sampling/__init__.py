"""Sampling synopses and join estimators (the 1988 statistical-estimator
lineage the paper surveys as references [1, 14, 15, 22, 28])."""

from .estimators import (
    SampleJoinEstimate,
    estimate_chain_join_size_samples,
    estimate_join_size_bernoulli,
    estimate_join_size_reservoir,
)
from .reservoir import BernoulliSample, ReservoirSample

__all__ = [
    "SampleJoinEstimate",
    "estimate_chain_join_size_samples",
    "estimate_join_size_bernoulli",
    "estimate_join_size_reservoir",
    "BernoulliSample",
    "ReservoirSample",
]
