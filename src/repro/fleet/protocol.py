"""Length-prefixed pickle frames: the fleet's wire format.

Every fleet connection — supervisor to shard worker — exchanges Python
values as *frames*: an 8-byte big-endian length header followed by the
pickled payload.  The explicit length makes message boundaries
unambiguous over TCP's byte stream and lets the receiver pre-check a
corrupt header before allocating, the classic failure mode of
length-prefixed protocols fed a desynchronized stream.

Error surface, chosen to match what the supervisor needs to distinguish:

* a clean EOF mid-frame raises :exc:`EOFError` (the peer closed —
  for a worker socket, the process died);
* socket timeouts and transport failures surface as :exc:`OSError`
  (``socket.timeout`` is an ``OSError`` subclass), which the supervisor
  treats as a crashed worker;
* a length header beyond :data:`MAX_FRAME_BYTES` raises
  :exc:`ProtocolError` — the stream is desynchronized or hostile, and
  reading on would only smear the corruption.

Pickle is appropriate here because both ends are the same trusted
codebase on the same machine (workers bind loopback only); this is an
IPC format, not an internet-facing one.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

__all__ = ["MAX_FRAME_BYTES", "ProtocolError", "recv_frame", "send_frame"]

#: Refuse frames larger than this (a desynchronized stream shows up as a
#: garbage length; 1 GiB is far above any real command batch).
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">Q")


class ProtocolError(RuntimeError):
    """The byte stream is not a well-formed frame sequence."""


class _Socket:
    """The duck type both ends use (a connected ``socket.socket``)."""

    def sendall(self, data: bytes) -> None: ...  # pragma: no cover - typing

    def recv(self, bufsize: int) -> bytes: ...  # pragma: no cover - typing


def send_frame(sock: Any, obj: Any) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    # One sendall keeps header+payload contiguous: a crash between two
    # writes could otherwise leave the peer blocked on a half-frame.
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: Any, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes read)"
            )
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: Any) -> Any:
    """Read one frame and unpickle it.

    Raises :exc:`EOFError` on a clean close *between* frames too — the
    caller cannot tell "peer finished" from "peer died" at this layer,
    and the supervisor treats both as the worker being gone.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header claims {length} bytes (> MAX_FRAME_BYTES); "
            "stream is desynchronized"
        )
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # unpicklable payload = corrupt stream
        raise ProtocolError(f"frame payload failed to unpickle: {exc}") from exc
