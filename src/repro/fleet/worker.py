"""The shard worker process: one ``ShardWorker`` behind a TCP socket.

:func:`shard_server_main` is the ``multiprocessing.Process`` entry point
the supervisor launches (a top-level function, so it survives the
``spawn`` start method's pickling).  Startup handshake:

1. bind a loopback listener on an ephemeral port,
2. send the port number back over the bootstrap pipe (the only use of
   the pipe — commands travel over the socket),
3. accept exactly one connection — the supervisor's — and serve
   length-prefixed command frames until shutdown.

Commands are ``(method, args, kwargs)`` against the shard's
:class:`~repro.sharding.worker.ShardWorker`, answered with
``("ok", result)`` or ``("err", message)`` — the same envelope the
in-process :class:`~repro.sharding.executor.ProcessExecutor` pipes use,
so worker semantics are identical across transports.  A ``None`` frame
is the graceful-shutdown request; transport failure on the single
supervisor connection ends the process (an orphaned worker must not
outlive its supervisor).
"""

from __future__ import annotations

import socket
from typing import Any

from ..sharding.worker import ShardWorker
from .protocol import recv_frame, send_frame

__all__ = ["shard_server_main"]

#: Loopback only: fleet workers are an IPC detail of one machine, never
#: an externally reachable service.
_BIND_HOST = "127.0.0.1"


def shard_server_main(
    bootstrap: Any, shard_index: int, seed: int, telemetry: bool
) -> None:
    """Worker-process entry point: serve one shard over one connection."""
    worker = ShardWorker(shard_index, seed, telemetry)
    listener = socket.create_server((_BIND_HOST, 0))
    try:
        bootstrap.send(listener.getsockname()[1])
    finally:
        bootstrap.close()
    conn, _peer = listener.accept()
    listener.close()
    try:
        _serve_connection(conn, worker)
    finally:
        conn.close()


def _serve_connection(conn: socket.socket, worker: ShardWorker) -> None:
    while True:
        try:
            message = recv_frame(conn)
        except (EOFError, OSError):
            # Supervisor gone (crash or abandon): nothing left to serve.
            return
        if message is None:
            # Graceful shutdown: ack so the supervisor can join() without
            # racing the process teardown, then exit.
            try:
                send_frame(conn, ("ok", None))
            except OSError:  # pragma: no cover - peer raced the close
                pass
            return
        method, args, kwargs = message
        try:
            result = getattr(worker, method)(*args, **kwargs)
        except Exception as exc:
            reply = ("err", f"{type(exc).__name__}: {exc}")
        else:
            reply = ("ok", result)
        try:
            send_frame(conn, reply)
        except OSError:
            return
