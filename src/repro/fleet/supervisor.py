"""Shard process supervision: launch, heartbeat, restart, replay.

:class:`ShardSupervisor` owns one worker process per shard (entry point
:func:`repro.fleet.worker.shard_server_main`), talks to each over a
per-shard TCP connection speaking :mod:`repro.fleet.protocol` frames,
and keeps the fleet answer-correct across worker crashes:

* every state-mutating command is appended to that shard's
  :class:`~repro.resilience.journal.CommandJournal` *before* dispatch;
* a successful ``save_checkpoint`` marks the journal (and truncates the
  replayed prefix), so the journal holds exactly the post-checkpoint
  suffix;
* when a worker is gone — connection reset, clean EOF, or a call
  timeout, all treated identically — the supervisor respawns the
  process, restores the latest checkpoint (if one was ever marked) and
  replays the journal suffix in order.  Replay is correct because a
  crash discards *all* partial effects of the in-flight command, and
  every journaled command is deterministic given the restored state.

Liveness has two detectors.  The command path detects death
synchronously (the failed send/recv triggers the revive before the
caller sees a result), which is what makes chaos-kill at a batch
boundary deterministic.  The optional heartbeat thread pings idle
shards every ``heartbeat_interval`` seconds so a crashed worker is
revived even when no commands are flowing; a busy shard is skipped (its
in-flight command is the better liveness probe).

A shard that exhausts ``max_restarts`` (or crashes with ``restart``
disabled, or fails *during* recovery) is marked down: subsequent
commands raise :class:`~repro.sharding.executor.ShardError`
immediately, which is the signal the engine's ``partial`` degradation
policy turns into a survivor-scaled answer.

Everything is observable: ``repro_fleet_restarts_total{shard}``,
``repro_fleet_heartbeat_misses_total{shard}`` and the
``repro_fleet_shard_up{shard}`` gauge live in the supervisor's
:class:`~repro.obs.metrics.MetricsRegistry` (merged into
``fleet_metrics()`` by the sharded engine).
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import threading
from typing import Any, Sequence

from ..obs.metrics import MetricsRegistry
from ..resilience.journal import CommandJournal
from ..sharding.executor import ShardError
from .protocol import ProtocolError, recv_frame, send_frame
from .worker import shard_server_main

__all__ = ["JOURNALED_METHODS", "ShardSupervisor", "WorkerGone"]

#: Worker methods that mutate shard state and must be replayed after a
#: restore; everything else is a read and is simply retried.
JOURNALED_METHODS = frozenset(
    {
        "create_relation",
        "register_query",
        "unregister_query",
        "enable_fault_isolation",
        "ingest",
    }
)

#: Seconds to wait for a freshly spawned worker's port handshake.
_SPAWN_TIMEOUT = 30.0


class WorkerGone(ConnectionError):
    """Transport-level loss of a shard worker (crash, reset, or timeout)."""

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard} worker gone: {message}")
        self.shard = shard


class _ShardProcess:
    """One worker process plus the connected command socket."""

    def __init__(
        self,
        shard: int,
        seed: int,
        telemetry: bool,
        ctx: Any,
        call_timeout: float | None,
    ) -> None:
        self.shard = shard
        self._seed = seed
        self._telemetry = telemetry
        self._ctx = ctx
        self._call_timeout = call_timeout
        self._proc: Any = None
        self._sock: socket.socket | None = None

    @property
    def pid(self) -> int | None:
        return None if self._proc is None else self._proc.pid

    def spawn(self) -> None:
        """Start the worker process and connect to its command socket."""
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=shard_server_main,
            args=(send_conn, self.shard, self._seed, self._telemetry),
            daemon=True,
            name=f"repro-fleet-shard-{self.shard}",
        )
        proc.start()
        send_conn.close()
        try:
            if not recv_conn.poll(_SPAWN_TIMEOUT):
                raise WorkerGone(self.shard, "no port handshake before timeout")
            port = recv_conn.recv()
        except (EOFError, OSError) as exc:
            proc.terminate()
            raise WorkerGone(self.shard, f"died during startup: {exc}") from exc
        finally:
            recv_conn.close()
        sock = socket.create_connection(("127.0.0.1", port), timeout=_SPAWN_TIMEOUT)
        sock.settimeout(self._call_timeout)
        self._proc = proc
        self._sock = sock

    def request(self, method: str, args: Sequence[Any], kwargs: dict[str, Any]) -> Any:
        """One command round-trip; raises :class:`WorkerGone` on transport loss.

        A timed-out call also raises :class:`WorkerGone`: the connection
        then has an unconsumed reply in flight, so it cannot be reused —
        the supervisor's response (kill + respawn + replay) is exactly
        the desynchronization recovery this needs.
        """
        if self._sock is None:
            raise WorkerGone(self.shard, "not connected")
        try:
            send_frame(self._sock, (method, tuple(args), dict(kwargs)))
            status, payload = recv_frame(self._sock)
        except (EOFError, OSError, ProtocolError) as exc:
            raise WorkerGone(self.shard, f"{type(exc).__name__}: {exc}") from exc
        if status == "err":
            raise ShardError(self.shard, payload)
        return payload

    def stop(self) -> None:
        """Graceful shutdown: request exit, wait briefly, then escalate."""
        if self._sock is not None:
            try:
                send_frame(self._sock, None)
                recv_frame(self._sock)  # shutdown ack
            except (EOFError, OSError, ProtocolError):
                pass
            self._close_sock()
        self._reap(graceful_timeout=5.0)

    def destroy(self) -> None:
        """Tear the worker down now (crash recovery path)."""
        self._close_sock()
        self._reap(graceful_timeout=0.0)

    def _close_sock(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._sock = None

    def _reap(self, graceful_timeout: float) -> None:
        proc = self._proc
        if proc is None:
            return
        if graceful_timeout > 0:
            proc.join(timeout=graceful_timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - terminate resisted
            proc.kill()
            proc.join(timeout=1.0)
        self._proc = None


class ShardSupervisor:
    """Launch, monitor, and self-heal a fleet of shard worker processes."""

    def __init__(
        self,
        restart: bool = True,
        max_restarts: int = 5,
        call_timeout: float | None = 30.0,
        heartbeat_interval: float | None = None,
        heartbeat_misses: int = 3,
        registry: MetricsRegistry | None = None,
        mp_context: str | None = None,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive (or None)")
        if heartbeat_misses < 1:
            raise ValueError(f"heartbeat_misses must be >= 1, got {heartbeat_misses}")
        self.restart = restart
        self.max_restarts = max_restarts
        self.call_timeout = call_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.registry = registry if registry is not None else MetricsRegistry()
        self._ctx_name = mp_context
        self.num_shards = 0
        self._procs: list[_ShardProcess] = []
        self._journals: list[CommandJournal] = []
        self._locks: list[threading.Lock] = []
        self._restart_counts: list[int] = []
        self._miss_counts: list[int] = []
        self._down: dict[int, str] = {}
        self._stop_event = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        self._restarts_metric = self.registry.counter(
            "repro_fleet_restarts_total",
            "Supervised shard worker restarts, by shard.",
            labelnames=("shard",),
        )
        self._misses_metric = self.registry.counter(
            "repro_fleet_heartbeat_misses_total",
            "Heartbeat pings a shard worker failed to answer, by shard.",
            labelnames=("shard",),
        )
        self._up_metric = self.registry.gauge(
            "repro_fleet_shard_up",
            "Shard worker health (1 = serving, 0 = down).",
            labelnames=("shard",),
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self, num_shards: int, seed: int, telemetry: bool = True) -> None:
        if self._procs:
            raise RuntimeError("supervisor already started")
        name = self._ctx_name
        if name is None:
            name = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(name)
        self.num_shards = num_shards
        self._journals = [CommandJournal() for _ in range(num_shards)]
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self._restart_counts = [0] * num_shards
        self._miss_counts = [0] * num_shards
        self._down = {}
        for shard in range(num_shards):
            proc = _ShardProcess(shard, seed, telemetry, ctx, self.call_timeout)
            proc.spawn()
            self._procs.append(proc)
            self._up_metric.labels(str(shard)).set(1.0)
        if self.heartbeat_interval is not None:
            self._stop_event.clear()
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="repro-fleet-heartbeat", daemon=True
            )
            self._heartbeat_thread.start()

    def stop(self) -> None:
        """Shut every worker down (idempotent)."""
        self._stop_event.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=10.0)
            self._heartbeat_thread = None
        for shard, proc in enumerate(self._procs):
            with self._locks[shard]:
                proc.stop()
                self._up_metric.labels(str(shard)).set(0.0)
        self._procs = []

    # ------------------------------------------------------------------ #
    # command dispatch
    # ------------------------------------------------------------------ #

    def command(
        self,
        shard: int,
        method: str,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> Any:
        """Run one worker command with journaling and crash recovery.

        A journaled command that dies in flight is *not* re-sent after
        the revive: the revive's replay already applied it (exactly once,
        onto state with no partial effects), so the call returns ``None``
        for that rare case.  Read commands are retried once against the
        revived worker.
        """
        kwargs = kwargs if kwargs is not None else {}
        lock = self._locks[shard]
        with lock:
            self._check_up(shard)
            journaled = method in JOURNALED_METHODS
            if journaled:
                self._journals[shard].append(method, tuple(args), dict(kwargs))
            try:
                result = self._procs[shard].request(method, args, kwargs)
            except WorkerGone as exc:
                self._revive_locked(shard, str(exc))
                if journaled:
                    return None
                result = self._procs[shard].request(method, args, kwargs)
            if method == "save_checkpoint":
                # The checkpoint now covers everything journaled so far:
                # mark it (remembering the store directory for revives)
                # and drop the prefix replay no longer needs.
                journal = self._journals[shard]
                journal.mark(str(args[0]))
                journal.truncate()
            elif method == "load_latest_checkpoint":
                # The worker's state *is* the checkpoint now; any journal
                # history predates it and must not be replayed on top.
                journal = self._journals[shard]
                journal.clear()
                journal.mark(str(args[0]))
            return result

    def _check_up(self, shard: int) -> None:
        reason = self._down.get(shard)
        if reason is not None:
            raise ShardError(shard, f"worker is down ({reason})")

    def _mark_down_locked(self, shard: int, reason: str) -> None:
        self._down[shard] = reason
        self._up_metric.labels(str(shard)).set(0.0)

    def _revive_locked(self, shard: int, cause: str) -> None:
        """Respawn a dead worker and rebuild its state (lock held)."""
        self._procs[shard].destroy()
        self._up_metric.labels(str(shard)).set(0.0)
        if not self.restart:
            self._mark_down_locked(shard, f"restart disabled; {cause}")
            raise ShardError(shard, f"worker died ({cause}) and restart is disabled")
        if self._restart_counts[shard] >= self.max_restarts:
            self._mark_down_locked(shard, f"max_restarts exhausted; {cause}")
            raise ShardError(
                shard,
                f"worker died ({cause}) after {self.max_restarts} restarts",
            )
        self._restart_counts[shard] += 1
        self._restarts_metric.labels(str(shard)).inc()
        journal = self._journals[shard]
        try:
            self._procs[shard].spawn()
            if journal.has_mark:
                self._procs[shard].request(
                    "load_latest_checkpoint", (journal.mark_ref,), {}
                )
                entries = journal.since_mark()
            else:
                entries = journal.all_entries()
            for entry in entries:
                self._procs[shard].request(entry.method, entry.args, entry.kwargs)
        except (WorkerGone, ShardError) as exc:
            # Recovery itself failed (checkpoint unreadable, replay
            # rejected, or the fresh worker died too): this shard cannot
            # be made consistent, so it must not serve partial state.
            self._procs[shard].destroy()
            self._mark_down_locked(shard, f"recovery failed: {exc}")
            raise ShardError(shard, f"restart failed: {exc}") from exc
        self._up_metric.labels(str(shard)).set(1.0)

    # ------------------------------------------------------------------ #
    # heartbeats
    # ------------------------------------------------------------------ #

    def _heartbeat_loop(self) -> None:
        assert self.heartbeat_interval is not None
        while not self._stop_event.wait(self.heartbeat_interval):
            for shard in range(self.num_shards):
                self._heartbeat_one(shard)

    def _heartbeat_one(self, shard: int) -> None:
        lock = self._locks[shard]
        if not lock.acquire(blocking=False):
            # Busy shard: its in-flight command is the liveness probe.
            return
        try:
            if shard in self._down:
                return
            try:
                self._procs[shard].request("ping", (), {})
            except (WorkerGone, ShardError):
                self._miss_counts[shard] += 1
                self._misses_metric.labels(str(shard)).inc()
                if self._miss_counts[shard] >= self.heartbeat_misses:
                    self._miss_counts[shard] = 0
                    try:
                        self._revive_locked(shard, "heartbeat misses exhausted")
                    except ShardError:
                        pass  # marked down; the next command reports it
            else:
                self._miss_counts[shard] = 0
        finally:
            lock.release()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def pid(self, shard: int) -> int | None:
        """The worker process id (chaos tests aim SIGKILL at this)."""
        return self._procs[shard].pid

    def pids(self) -> list[int | None]:
        return [proc.pid for proc in self._procs]

    def shard_up(self, shard: int) -> bool:
        return shard not in self._down

    def restart_count(self, shard: int) -> int:
        return self._restart_counts[shard]

    def journal(self, shard: int) -> CommandJournal:
        return self._journals[shard]

    def health(self) -> dict[str, object]:
        """JSON-compatible fleet health snapshot (serve's ``stats`` op)."""
        return {
            "num_shards": self.num_shards,
            "up": [self.shard_up(shard) for shard in range(self.num_shards)],
            "down": dict(self._down),
            "restarts": list(self._restart_counts),
            "journals": [journal.as_dict() for journal in self._journals],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSupervisor(shards={self.num_shards}, "
            f"down={sorted(self._down)}, restarts={self._restart_counts})"
        )
