"""A small synchronous client for the serve daemon's newline-JSON protocol.

One connection, strict request/response alternation — deliberately the
simplest correct consumer of :class:`~repro.fleet.serve.FleetServer`
(tests, the CLI's smoke paths, and scripts).  Pipelined / async
consumers can speak the wire protocol directly; it is just JSON lines.
"""

from __future__ import annotations

import json
import socket
from typing import Any

__all__ = ["FleetClient"]


class FleetClient:
    """Blocking request/response client for one serve-daemon connection."""

    def __init__(self, host: str, port: int, timeout: float | None = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one op and block for its response object."""
        payload: dict[str, Any] = dict(fields)
        payload["op"] = op
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ConnectionError(f"malformed response: {response!r}")
        return response

    def check(self, op: str, **fields: Any) -> dict[str, Any]:
        """Like :meth:`request`, but raise on an ``ok: false`` response."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise RuntimeError(f"{op} failed: {response.get('error')}")
        return response

    # Convenience wrappers mirroring the ops (see serve.py for fields).

    def ping(self) -> dict[str, Any]:
        return self.check("ping")

    def create_relation(
        self,
        name: str,
        attributes: list[Any],
        domains: list[Any],
        partition_by: str | None = None,
    ) -> dict[str, Any]:
        return self.check(
            "create_relation",
            name=name,
            attributes=attributes,
            domains=domains,
            partition_by=partition_by,
        )

    def register(self, name: str, spec: dict[str, Any]) -> dict[str, Any]:
        return self.check("register", name=name, spec=spec)

    def ingest(
        self, relation: str, rows: list[Any], kind: str = "insert"
    ) -> dict[str, Any]:
        return self.check("ingest", relation=relation, rows=rows, kind=kind)

    def query(
        self,
        name: str,
        policy: str | None = None,
        mode: str | None = None,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {"name": name}
        if policy is not None:
            fields["policy"] = policy
        if mode is not None:
            fields["mode"] = mode
        return self.check("query", **fields)

    def stats(self) -> dict[str, Any]:
        return self.check("stats")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
