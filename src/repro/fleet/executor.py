"""``SocketExecutor``: the supervised network fleet as a ShardExecutor.

The :class:`~repro.sharding.engine.ShardedStreamEngine` only ever talks
to the :class:`~repro.sharding.executor.ShardExecutor` protocol, so
moving shards out of process is entirely this adapter: ``call`` routes
one command through the :class:`~repro.fleet.supervisor.ShardSupervisor`
(which journals, detects crashes, and revives), and ``scatter`` fans
commands out on one single-thread pool per shard — the same per-shard
ordering guarantee :class:`~repro.sharding.executor.ThreadExecutor`
gives, here overlapping network round-trips instead of GIL releases.

Crash recovery is invisible at this layer by design: a revive happens
inside ``supervisor.command`` and the caller just gets its result (or a
:class:`~repro.sharding.executor.ShardError` once the shard is beyond
recovery, which is what the engine's degradation policies key on).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from ..obs.metrics import MetricsRegistry
from ..sharding.executor import ShardError, ShardExecutor
from .supervisor import ShardSupervisor

__all__ = ["SocketExecutor"]


class SocketExecutor(ShardExecutor):
    """One supervised worker process per shard, commands over TCP."""

    def __init__(
        self,
        supervisor: ShardSupervisor | None = None,
        restart: bool = True,
        max_restarts: int = 5,
        call_timeout: float | None = 30.0,
        heartbeat_interval: float | None = None,
        heartbeat_misses: int = 3,
        registry: MetricsRegistry | None = None,
        mp_context: str | None = None,
    ) -> None:
        if supervisor is None:
            supervisor = ShardSupervisor(
                restart=restart,
                max_restarts=max_restarts,
                call_timeout=call_timeout,
                heartbeat_interval=heartbeat_interval,
                heartbeat_misses=heartbeat_misses,
                registry=registry,
                mp_context=mp_context,
            )
        self.supervisor = supervisor
        self._pools: list[ThreadPoolExecutor] = []

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """Supervisor-side fleet metrics (restarts, heartbeats, health)."""
        return self.supervisor.registry

    def start(self, num_shards: int, seed: int, telemetry: bool = True) -> None:
        self.num_shards = num_shards
        self.supervisor.start(num_shards, seed, telemetry)
        self._pools = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"fleet-shard-{i}")
            for i in range(num_shards)
        ]

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        return self.supervisor.command(shard, method, args, kwargs)

    def scatter(self, method: str, per_shard: Sequence[tuple[Any, ...] | None]) -> list[Any]:
        futures = []
        for shard, item in enumerate(per_shard):
            if item is None:
                futures.append(None)
                continue
            args, kwargs = item
            futures.append(
                self._pools[shard].submit(
                    self.supervisor.command, shard, method, args, kwargs
                )
            )
        results: list[Any] = [None] * self.num_shards
        errors: list[ShardError] = []
        for shard, future in enumerate(futures):
            if future is None:
                continue
            try:
                results[shard] = future.result()
            except ShardError as exc:
                errors.append(exc)
        if errors:
            raise errors[0]
        return results

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []
        self.supervisor.stop()
