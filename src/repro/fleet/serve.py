"""The asyncio serving front-end: newline-JSON over TCP, backpressured.

:class:`FleetServer` puts a :class:`~repro.sharding.engine.ShardedStreamEngine`
behind a long-running socket daemon (the ``repro-experiments serve``
subcommand).  Protocol: one JSON object per line in, one JSON object per
line out, in request order per connection.  Requests carry ``op`` plus
op-specific fields; responses carry ``ok`` and either the result fields
or ``error``, echoing the request's ``id`` when one was given.

Memory is bounded per client by construction, both directions:

* inbound, the stream reader's ``limit`` (``read_limit``) caps one
  line, so a client cannot feed an unbounded request;
* outbound, responses are written through ``drain()`` with the
  transport's write high-water mark set to ``write_high_water`` — when
  a slow client stops reading, ``drain()`` suspends that client's
  coroutine, which *also* stops us reading its next request.  A slow
  consumer throttles itself; it never grows server-side queues.

Engine commands execute on one single-thread pool: the engine is not
thread-safe, and a single apply lane preserves the per-connection and
cross-connection ordering that ingest correctness needs, while the event
loop stays free to accept and parse other clients.

Degradation policy: ``query`` ops run under the server's default policy
(or a per-request override) — ``raise`` propagates shard loss as an
error response; ``partial`` answers from the surviving shards via
:meth:`~repro.sharding.engine.ShardedStreamEngine.answer_partial`, with
the degradation flag and survivor counts in the response.

Tracing: a request's ``traceparent`` is adopted around the engine work,
so one client request is one fleet trace (the PR 7 propagation path,
now reaching across the serve boundary).  Requests are counted in
``repro_serve_requests_total{op}``; connected clients in the
``repro_serve_clients`` gauge.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..obs.metrics import MetricsRegistry
from ..resilience.errors import DegradedQueryError
from ..sharding.engine import ShardedStreamEngine
from ..sharding.executor import ShardError
from ..streams.tuples import OpKind

__all__ = ["FleetServer"]

#: Default per-client line / write-buffer bound (bytes).
DEFAULT_LIMIT = 256 * 1024

_POLICIES = ("raise", "partial")


class FleetServer:
    """Serve one sharded engine to concurrent newline-JSON clients."""

    def __init__(
        self,
        fleet: ShardedStreamEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: str = "raise",
        read_limit: int = DEFAULT_LIMIT,
        write_high_water: int = DEFAULT_LIMIT,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        self.fleet = fleet
        self.host = host
        self.port = port
        self.policy = policy
        self.read_limit = read_limit
        self.write_high_water = write_high_water
        self.registry = registry if registry is not None else MetricsRegistry()
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="fleet-serve")
        self._server: asyncio.AbstractServer | None = None
        self._client_tasks: set[asyncio.Task[None]] = set()
        self._requests_metric = self.registry.counter(
            "repro_serve_requests_total",
            "Serve-daemon requests handled, by operation.",
            labelnames=("op",),
        )
        self._clients_metric = self.registry.gauge(
            "repro_serve_clients",
            "Serve-daemon client connections currently open.",
        )
        #: Requests whose engine work has completed (the backpressure
        #: tests read this to prove a slow client throttles dispatch).
        self.dispatched = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=self.read_limit
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Stop serving open connections too: a daemon shutdown must not
        # leave handler coroutines suspended in readline()/drain().
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        # shutdown(wait=True) drains the apply lane; run it off-loop so a
        # slow in-flight command cannot stall the whole event loop.
        await asyncio.get_running_loop().run_in_executor(None, self._pool.shutdown)

    # ------------------------------------------------------------------ #
    # per-client loop
    # ------------------------------------------------------------------ #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        self._clients_metric.inc()
        writer.transport.set_write_buffer_limits(high=self.write_high_water)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        {"ok": False, "error": "request exceeds read limit"},
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except ValueError as exc:
                    response: dict[str, Any] = {
                        "ok": False,
                        "error": f"malformed JSON: {exc}",
                    }
                else:
                    response = await self._dispatch(request)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to clean up
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            self._clients_metric.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, response: dict[str, Any]) -> None:
        writer.write(json.dumps(response).encode() + b"\n")
        # The backpressure point: past the write high-water mark this
        # suspends until the client reads, pausing *this* client's loop.
        await writer.drain()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    async def _dispatch(self, request: Any) -> dict[str, Any]:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = str(request.get("op", ""))
        self._requests_metric.labels(op or "unknown").inc()
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._pool, self._apply, op, request)
        except (ShardError, DegradedQueryError) as exc:
            response: dict[str, Any] = {"ok": False, "error": str(exc), "degraded": True}
        except Exception as exc:  # a bad request must not take the daemon down
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        else:
            response = {"ok": True, **result}
            self.dispatched += 1
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _apply(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        """Run one op on the engine (single apply lane, traced)."""
        tracer = self.fleet.tracer
        if tracer is None:
            return self._run_op(op, request)
        saved = tracer.context
        try:
            traceparent = request.get("traceparent")
            if traceparent is not None:
                tracer.adopt(str(traceparent))
            with tracer.span("serve_request", op=op):
                return self._run_op(op, request)
        finally:
            tracer.context = saved

    def _run_op(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        fleet = self.fleet
        if op == "ping":
            supervisor = getattr(fleet._executor, "supervisor", None)
            up = (
                [supervisor.shard_up(s) for s in range(fleet.num_shards)]
                if supervisor is not None
                else [True] * fleet.num_shards
            )
            return {"num_shards": fleet.num_shards, "up": up}
        if op == "create_relation":
            from ..resilience.checkpoint import domain_from_spec

            domains = [domain_from_spec(spec) for spec in request["domains"]]
            fleet.create_relation(
                str(request["name"]),
                [str(a) for a in request["attributes"]],
                domains,
                partition_by=request.get("partition_by"),
            )
            return {"relation": request["name"]}
        if op == "register":
            fleet.register_query_spec(str(request["name"]), dict(request["spec"]))
            return {"query": request["name"]}
        if op == "unregister":
            fleet.unregister_query(str(request["name"]))
            return {"query": request["name"]}
        if op == "ingest":
            kind = (
                OpKind.DELETE
                if str(request.get("kind", "insert")) == "delete"
                else OpKind.INSERT
            )
            rows = request["rows"]
            before = 0 if fleet.dead_letters is None else fleet.dead_letters.total
            fleet.ingest_batch(str(request["relation"]), rows, kind)
            after = 0 if fleet.dead_letters is None else fleet.dead_letters.total
            return {"rows": len(rows), "dead_lettered": after - before}
        if op == "query":
            name = str(request["name"])
            policy = str(request.get("policy", self.policy))
            if policy not in _POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r}; choose from {_POLICIES}"
                )
            mode = str(request.get("mode", "answer"))
            if mode not in ("answer", "upper_bound", "clamped"):
                raise ValueError(
                    f"unknown estimation mode {mode!r}; "
                    "choose from 'answer', 'upper_bound', 'clamped'"
                )
            if policy == "partial":
                # A partial answer is already missing shards' state, so
                # no sound bound exists for it; bound modes must not
                # silently serve a partial count as a "guarantee".
                if mode != "answer":
                    raise ValueError(
                        "bound modes are not available under the 'partial' "
                        "policy (a partial merge has no sound bound)"
                    )
                partial = fleet.answer_partial(name)
                return partial.as_dict()
            report = fleet.bound_report(name)
            if report is None:
                if mode != "answer":
                    raise ValueError(
                        f"query {name!r} was not registered with bounds=True; "
                        f"mode {mode!r} needs degree statistics"
                    )
                return {"value": fleet.answer(name), "degraded": False}
            value = report["estimate" if mode == "answer" else mode]
            return {
                "value": value,
                "degraded": False,
                "mode": mode,
                "bound": {
                    "upper_bound": report["upper_bound"],
                    "clamped": report["clamped"],
                    "clamp_fired": report["clamp_fired"],
                },
            }
        if op == "deadletters":
            if fleet.dead_letters is None:
                raise ValueError("dead-lettering is not enabled on this fleet")
            if request.get("replay"):
                return {"replay": fleet.replay_dead_letters().as_dict()}
            return {"deadletters": fleet.dead_letters.as_dict()}
        if op == "stats":
            supervisor = getattr(fleet._executor, "supervisor", None)
            shards: list[dict[str, Any] | None] = []
            for shard in range(fleet.num_shards):
                try:
                    shards.append(fleet._executor.call(shard, "stats_dict"))
                except ShardError:
                    shards.append(None)  # a down shard must not sink stats
            return {
                "relations": fleet.relation_names(),
                "queries": fleet.query_names(),
                "shards": shards,
                "health": None if supervisor is None else supervisor.health(),
            }
        raise ValueError(f"unknown op {op!r}")
