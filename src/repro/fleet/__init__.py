"""Supervised network shard fleet: socket executor, supervisor, serve daemon.

This package moves the shard fleet out of the coordinator process.  The
pieces, bottom-up:

* :mod:`repro.fleet.protocol` — length-prefixed pickle frames over a
  stream socket, the wire format every fleet connection speaks.
* :mod:`repro.fleet.worker` — the worker-process entry point: one
  :class:`~repro.sharding.worker.ShardWorker` served over a TCP socket.
* :mod:`repro.fleet.supervisor` — :class:`ShardSupervisor` launches the
  worker processes, heartbeats them, and on crash restarts a worker from
  its latest checkpoint then replays the post-checkpoint
  :class:`~repro.resilience.journal.CommandJournal` suffix.
* :mod:`repro.fleet.executor` — :class:`SocketExecutor`, the
  :class:`~repro.sharding.executor.ShardExecutor` implementation that
  plugs supervised network workers into the unchanged
  :class:`~repro.sharding.engine.ShardedStreamEngine`.
* :mod:`repro.fleet.serve` / :mod:`repro.fleet.client` — the
  ``repro-experiments serve`` asyncio front-end (newline-JSON protocol,
  bounded per-client backpressure, graceful-degradation query policies)
  and its small synchronous client.

The supervision contract the chaos suite enforces: SIGKILL any shard at
any batch boundary and, after the supervised restart + journal replay,
every estimation method answers identically to an engine that never
crashed.
"""

from .client import FleetClient
from .executor import SocketExecutor
from .protocol import recv_frame, send_frame
from .serve import FleetServer
from .supervisor import ShardSupervisor, WorkerGone

__all__ = [
    "FleetClient",
    "FleetServer",
    "ShardSupervisor",
    "SocketExecutor",
    "WorkerGone",
    "recv_frame",
    "send_frame",
]
