"""Configurations reproducing every figure of the paper's section 5.

``FIGURES["fig01"]`` … ``FIGURES["fig20"]`` map one-to-one onto the paper's
Figures 1-20, at reproduction-scale defaults.  The whole catalogue is
produced by :func:`make_figures`, which takes the scale knobs explicitly —
so a paper-scale run is

    FIGURES_PAPER = make_figures(FigureScales.paper())

(the paper's testbed: 10^7-tuple relations over 10^5-value domains with
200 repetitions — hours of compute, not minutes).  The module-level
``FIGURES`` uses :meth:`FigureScales.default` adjusted by the environment
variables ``REPRO_TRIALS`` (trials per point, default 5) and
``REPRO_SIZE_FACTOR`` (multiplies relation sizes, default 1.0).

The *shapes* (who wins, by roughly what factor, where curves saturate) are
what the benchmarks assert, per DESIGN.md; every figure's paper expectation
is recorded in its ``expectation`` field and checked against results in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from ..core.normalization import Domain
from ..data.clustered import ClusteredConfig, make_clustered_chain
from ..data.reallike import (
    cps_like,
    sipp_ssuseq,
    sipp_weight_earnings,
    traffic_hosts,
    traffic_pairs,
)
from ..data.zipf import Correlation, TypeIConfig, make_type1_pair
from .harness import ChainDataset, DataGen, ExperimentConfig


@dataclass(frozen=True)
class FigureScales:
    """Every size knob of the figure catalogue, in one place."""

    trials: int = 5
    #: Type I (Figures 1-6): the paper uses n=10^5, N=10^7; the default
    #: sweeps the same 0.5%-10% of the domain in coefficients.
    type1_domain: int = 5_000
    type1_size: int = 200_000
    type1_budgets: tuple[int, ...] = (25, 50, 100, 150, 200, 250, 300, 400, 500)
    #: Type II (Figures 7-12): paper domains 1024 (1/2-join) and 400 (3-join).
    cluster_1j_domain: int = 1_024
    cluster_2j_domain: int = 256
    cluster_3j_domain: int = 200
    cluster_size: int = 100_000
    #: Real-like (Figures 13-20) scales; domain/tuple factors of the originals.
    cps_scale: float = 1.0
    sipp_scale: float = 0.1
    traffic_scale: float = 0.2
    traffic_single_scale: float = 0.5
    udp_scale: float = 0.08

    @classmethod
    def default(cls) -> "FigureScales":
        """Reproduction-scale defaults, adjusted by the environment knobs."""
        scales = cls(trials=int(os.environ.get("REPRO_TRIALS", "5")))
        factor = float(os.environ.get("REPRO_SIZE_FACTOR", "1.0"))
        # Exact sentinel: "1.0" parses to exactly 1.0, nothing is computed.
        if factor != 1.0:  # repro: noqa[REP004]
            scales = replace(
                scales,
                type1_size=int(scales.type1_size * factor),
                cluster_size=int(scales.cluster_size * factor),
                cps_scale=scales.cps_scale * factor,
            )
        return scales

    @classmethod
    def paper(cls, trials: int = 200) -> "FigureScales":
        """The paper's full testbed sizes.  Expect hours per figure."""
        return cls(
            trials=trials,
            type1_domain=100_000,
            type1_size=10_000_000,
            type1_budgets=tuple(range(100, 1001, 100)),
            cluster_1j_domain=1_024,
            cluster_2j_domain=1_024,
            cluster_3j_domain=400,
            cluster_size=10_000_000,
            cps_scale=1.0,
            sipp_scale=1.0,
            traffic_scale=1.0,
            traffic_single_scale=1.0,
            udp_scale=1.0,
        )


def make_figures(scales: FigureScales | None = None) -> dict[str, ExperimentConfig]:
    """Build the complete Figure 1-20 catalogue at the given scales."""
    s = scales if scales is not None else FigureScales.default()
    figures: dict[str, ExperimentConfig] = {}

    def domains(*sizes_per_relation: tuple[int, ...]) -> list[list[Domain]]:
        return [[Domain.of_size(n) for n in sizes] for sizes in sizes_per_relation]

    # ---------------- Figures 1-6: Type I single joins ----------------- #

    def type1_gen(correlation: Correlation, z2: float, smooth: bool) -> DataGen:
        config = TypeIConfig(
            domain_size=s.type1_domain,
            relation_size=s.type1_size,
            z1=0.5,
            z2=z2,
            correlation=correlation,
            smooth=smooth,
        )

        def gen(rng: np.random.Generator) -> ChainDataset:
            c1, c2 = make_type1_pair(config, rng)
            return [c1, c2], domains((s.type1_domain,), (s.type1_domain,))

        return gen

    type1 = [
        (
            "fig01",
            "Single-join, zipf 0.5/1.0, strong positive correlation (rough)",
            (Correlation.STRONG_POSITIVE, 1.0, False),
            "Sketches beat the cosine method: strong positive correlation is "
            "a generalization of the self-join, the sketches' best case.",
        ),
        (
            "fig02",
            "Single-join, zipf 0.5/1.0, weak positive correlation (10% permuted)",
            (Correlation.WEAK_POSITIVE, 1.0, False),
            "Cosine wins; paper reports skimmed/basic sketch errors 2.7x and "
            "8.3x larger at 500 coefficients.",
        ),
        (
            "fig03",
            "Single-join, zipf 0.5/1.0, independent attributes",
            (Correlation.INDEPENDENT, 1.0, False),
            "Cosine wins big; paper reports 24.4x (skimmed) and 49.8x (basic) "
            "larger sketch errors at 500 coefficients.",
        ),
        (
            "fig04",
            "Single-join, zipf 0.5/1.0, negative correlation",
            (Correlation.NEGATIVE, 1.0, False),
            "Cosine wins; paper reports 3.0x (skimmed) and 8.9x (basic) larger "
            "sketch errors at 500 coefficients.",
        ),
        (
            "fig05",
            "Single-join, zipf 0.5/1.0 (smooth), strong positive correlation",
            (Correlation.STRONG_POSITIVE, 1.0, True),
            "Smoothness plays in the cosine method's favour: its error drops "
            "sharply vs Figure 1 while the sketches are unchanged (they do "
            "not approximate distributions).",
        ),
        (
            "fig06",
            "Single-join, zipf 0.5/1.5 (skewer), independent attributes",
            (Correlation.INDEPENDENT, 1.5, False),
            "All methods degrade vs Figure 3; ordering unchanged (paper: 7.5x "
            "and 39.5x larger sketch errors at 500 coefficients).",
        ),
    ]
    for name, title, (correlation, z2, smooth), expectation in type1:
        figures[name] = ExperimentConfig(
            name=name,
            title=title,
            datagen=type1_gen(correlation, z2, smooth),
            budgets=s.type1_budgets,
            trials=s.trials,
            expectation=expectation,
        )

    # ---------------- Figures 7-12: Type II clustered ------------------ #

    def clustered_gen(domain: int, clusters: int, num_joins: int) -> DataGen:
        config = ClusteredConfig(
            domain_size=domain,
            num_clusters=clusters,
            relation_size=s.cluster_size,
            z_inter=1.0,
            z_intra=0.5,
        )

        def gen(rng: np.random.Generator) -> ChainDataset:
            relations = make_clustered_chain(config, num_joins, rng)
            doms = [[Domain.of_size(domain)] * r.ndim for r in relations]
            return relations, doms

        return gen

    clustered = [
        ("fig07", 10, 1, s.cluster_1j_domain,
         (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
         "Cosine wins (paper: 0.60% vs 7.98%/8.24% at 500 coefficients, 13x+ "
         "better) thanks to imperfect positive correlation and cluster "
         "smoothness."),
        ("fig08", 50, 1, s.cluster_1j_domain,
         (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
         "Same story as Figure 7 with more clusters."),
        ("fig09", 10, 2, s.cluster_2j_domain,
         (500, 1000, 1500, 2000, 2500, 3000, 3500, 4000),
         "All methods degrade vs single join (larger attribute space); cosine "
         "still wins (paper: 5.4x/5.6x larger sketch errors at 1000 "
         "coefficients)."),
        ("fig10", 50, 2, s.cluster_2j_domain,
         (500, 1000, 1500, 2000, 2500, 3000, 3500, 4000),
         "Cosine wins (paper: 11.1x/14.3x at 1000 coefficients)."),
        ("fig11", 10, 3, s.cluster_3j_domain,
         (1000, 2000, 4000, 6000, 8000, 10000),
         "Sketch errors too large to be useful at small budgets; cosine "
         "converges first (paper: 2.2x/3.0x larger sketch errors even at "
         "20000 coefficients)."),
        ("fig12", 50, 3, s.cluster_3j_domain,
         (1000, 2000, 4000, 6000, 8000, 10000),
         "Same story as Figure 11 with more clusters."),
    ]
    for name, clusters, num_joins, domain, budgets, expectation in clustered:
        arity = {1: "Single", 2: "Two", 3: "Three"}[num_joins]
        figures[name] = ExperimentConfig(
            name=name,
            title=f"{arity}-join, clustered data, {clusters} clusters",
            datagen=clustered_gen(domain, clusters, num_joins),
            budgets=budgets,
            trials=s.trials,
            expectation=expectation,
        )

    # ---------------- Figures 13-14: Real data I (CPS-like) ------------ #

    def cps_single_gen(rng: np.random.Generator) -> ChainDataset:
        jan = cps_like(1, rng, scale=s.cps_scale)
        feb = cps_like(2, rng, scale=s.cps_scale)
        return (
            [jan.counts.sum(axis=1), feb.counts.sum(axis=1)],
            [[jan.domains[0]], [feb.domains[0]]],
        )

    figures["fig13"] = ExperimentConfig(
        name="fig13",
        title="Single-join, Real data I (CPS Age)",
        datagen=cps_single_gen,
        budgets=(10, 20, 30, 40, 50),
        trials=s.trials,
        expectation=(
            "All methods good on the tiny Age domain and huge join (paper: "
            "4.71%/8.08%/16.05% at just 20 coefficients); cosine still lowest."
        ),
    )

    def cps_two_join_gen(rng: np.random.Generator) -> ChainDataset:
        jan = cps_like(1, rng, scale=s.cps_scale)
        feb = cps_like(2, rng, scale=s.cps_scale)
        mar = cps_like(3, rng, scale=s.cps_scale)
        return (
            [jan.counts.sum(axis=1), feb.counts, mar.counts.sum(axis=0)],
            [[jan.domains[0]], list(feb.domains), [mar.domains[1]]],
        )

    figures["fig14"] = ExperimentConfig(
        name="fig14",
        title="Two-join, Real data I (CPS Age, Education)",
        datagen=cps_two_join_gen,
        budgets=(500, 1000, 1500, 2000, 2500, 3000, 3500, 4000),
        trials=s.trials,
        expectation=(
            "Cosine under 15% with 1500 coefficients while sketches are at "
            "38%/45% (paper); note the cosine series saturates at the "
            "99x46-space coefficient count."
        ),
    )

    # ---------------- Figures 15-16: Real data II (SIPP-like) ---------- #

    def sipp_single_gen(rng: np.random.Generator) -> ChainDataset:
        r1 = sipp_ssuseq(2001, rng, scale=s.sipp_scale)
        r2 = sipp_ssuseq(2004, rng, scale=s.sipp_scale)
        return [r1.counts, r2.counts], [list(r1.domains), list(r2.domains)]

    figures["fig15"] = ExperimentConfig(
        name="fig15",
        title="Single-join, Real data II (SIPP SSUSEQ)",
        datagen=sipp_single_gen,
        budgets=(100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        trials=s.trials,
        expectation=(
            "The paper's most lopsided result: the huge, smooth, near-uniform "
            "SSUSEQ domain gives cosine 0.12% vs 16.23%/22.12% at 100 "
            "coefficients (136x/185x)."
        ),
    )

    def sipp_two_join_gen(rng: np.random.Generator) -> ChainDataset:
        r1 = sipp_weight_earnings(2001, rng, scale=s.sipp_scale)
        r2 = sipp_weight_earnings(2004, rng, scale=s.sipp_scale)
        r3 = sipp_weight_earnings(
            2001, np.random.default_rng(rng.integers(1 << 31)), scale=s.sipp_scale
        )
        return (
            [r1.counts.sum(axis=1), r2.counts, r3.counts.sum(axis=0)],
            [[r1.domains[0]], list(r2.domains), [r3.domains[1]]],
        )

    figures["fig16"] = ExperimentConfig(
        name="fig16",
        title="Two-join, Real data II (SIPP WHFNWGT, THEARN)",
        datagen=sipp_two_join_gen,
        budgets=(100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        trials=s.trials,
        expectation=(
            "Cosine wins throughout (paper: 6.6% vs 10.5%/12.3% at 1000 "
            "coefficients)."
        ),
    )

    # ---------------- Figures 17-20: Real data III (traffic-like) ------ #

    def traffic_single_gen(field: str) -> DataGen:
        def gen(rng: np.random.Generator) -> ChainDataset:
            structure_seed = int(rng.integers(1 << 31))
            r1 = traffic_hosts(
                1, rng, field, scale=s.traffic_single_scale, structure_seed=structure_seed
            )
            r2 = traffic_hosts(
                2, rng, field, scale=s.traffic_single_scale, structure_seed=structure_seed
            )
            return [r1.counts, r2.counts], [list(r1.domains), list(r2.domains)]

        return gen

    figures["fig17"] = ExperimentConfig(
        name="fig17",
        title="Single-join (1), Real data III (TCP source hosts)",
        datagen=traffic_single_gen("src"),
        budgets=(100, 200, 300, 400, 500, 600, 700, 800, 900),
        trials=s.trials,
        expectation=(
            "Cosine wins on the rough, skewed host distribution (paper: "
            "10.79% vs 57.6%/60.1% at 100 coefficients)."
        ),
    )

    figures["fig18"] = ExperimentConfig(
        name="fig18",
        title="Single-join (2), Real data III (TCP destination hosts)",
        datagen=traffic_single_gen("dst"),
        budgets=(100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        trials=s.trials,
        expectation="Same story as Figure 17 on the destination attribute.",
    )

    def traffic_two_join_gen(udp: bool, scale: float) -> DataGen:
        def gen(rng: np.random.Generator) -> ChainDataset:
            structure_seed = int(rng.integers(1 << 31))
            r1 = traffic_hosts(
                1, rng, "src", udp=udp, scale=scale, structure_seed=structure_seed
            )
            r2 = traffic_pairs(2, rng, udp=udp, scale=scale, structure_seed=structure_seed)
            r3 = traffic_hosts(
                3, rng, "dst", udp=udp, scale=scale, structure_seed=structure_seed
            )
            return (
                [r1.counts, r2.counts, r3.counts],
                [[r1.domains[0]], list(r2.domains), [r3.domains[0]]],
            )

        return gen

    figures["fig19"] = ExperimentConfig(
        name="fig19",
        title="Two-join (1), Real data III (TCP src, dst)",
        datagen=traffic_two_join_gen(udp=False, scale=s.traffic_scale),
        budgets=(100, 300, 500, 700, 900, 1100, 1300, 1500),
        trials=s.trials,
        expectation=(
            "Cosine far ahead (paper: 0.57% vs 66.04%/93.72% at 1500 "
            "coefficients)."
        ),
    )

    figures["fig20"] = ExperimentConfig(
        name="fig20",
        title="Two-join (2), Real data III (UDP src, dst)",
        datagen=traffic_two_join_gen(udp=True, scale=s.udp_scale),
        budgets=(250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2250, 2500),
        trials=s.trials,
        expectation="Same story as Figure 19 on the UDP trace.",
    )

    return figures


#: The default reproduction-scale catalogue.
FIGURES: dict[str, ExperimentConfig] = make_figures()
