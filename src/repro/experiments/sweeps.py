"""Sensitivity sweeps beyond the paper's fixed figure settings.

The paper samples its parameter space at a few points (zipf 0.5/1.0/1.5,
four correlation regimes, 10%/permutation).  These sweeps trace the full
curves, answering the questions the figures raise:

* :func:`skew_sweep` — error vs the second relation's zipf parameter
  (interpolating Figure 3 -> Figure 6 and beyond);
* :func:`correlation_sweep` — error vs the fraction of displaced head
  frequencies (interpolating Figure 1 -> Figure 2 -> independence);
* :func:`domain_size_sweep` — error vs domain size at a fixed coefficient
  *fraction*, probing how the methods scale toward the paper's n = 10^5;
* :func:`bound_tightness_sweep` — the measured error against the Eq. 4.8
  deterministic bound across coefficient budgets (how loose is the
  worst-case guarantee on real-ish data).

Each returns plain result rows so benches and notebooks can render them;
``benchmarks/bench_sensitivity.py`` runs all four and asserts their
expected monotonicities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.error import relative_error_bound
from ..core.normalization import Domain
from ..data.zipf import Correlation, TypeIConfig, make_type1_pair
from .harness import ChainDataset, DataGen, ExperimentConfig, run_experiment
from .methods import Method, default_methods


@dataclass(frozen=True)
class SweepPoint:
    """One sweep position: the varied parameter and per-method mean errors."""

    parameter: float
    errors: dict[str, float]


def _mean_errors(
    datagen: DataGen, budget: int, trials: int, seed: int, methods: Sequence[Method]
) -> dict[str, float]:
    config = ExperimentConfig(
        name="sweep-point",
        title="sweep point",
        datagen=datagen,
        budgets=(budget,),
        trials=trials,
    )
    result = run_experiment(config, seed=seed, methods=list(methods))
    return {m: result.mean_error(m, budget) for m in result.series}


def skew_sweep(
    z2_values: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    domain_size: int = 5_000,
    relation_size: int = 200_000,
    budget: int = 250,
    trials: int = 3,
    seed: int = 0,
    methods: Sequence[Method] | None = None,
) -> list[SweepPoint]:
    """Error vs skew of R2 on independent Type I data (Figure 3 -> 6 axis)."""
    methods = list(methods) if methods is not None else default_methods()
    points = []
    for z2 in z2_values:
        config = TypeIConfig(
            domain_size=domain_size,
            relation_size=relation_size,
            z1=0.5,
            z2=z2,
            correlation=Correlation.INDEPENDENT,
        )

        def gen(
            rng: np.random.Generator, config: TypeIConfig = config
        ) -> ChainDataset:
            c1, c2 = make_type1_pair(config, rng)
            d = [[Domain.of_size(domain_size)], [Domain.of_size(domain_size)]]
            return [c1, c2], d

        points.append(SweepPoint(z2, _mean_errors(gen, budget, trials, seed, methods)))
    return points


def correlation_sweep(
    fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5),
    domain_size: int = 5_000,
    relation_size: int = 200_000,
    budget: int = 250,
    trials: int = 3,
    seed: int = 0,
    methods: Sequence[Method] | None = None,
) -> list[SweepPoint]:
    """Error vs displaced-head fraction (Figure 1 -> Figure 2 axis).

    Fraction 0 is the paper's strong positive correlation; growing the
    fraction weakens it toward independence, collapsing the join size and
    with it the sketches' relative accuracy.
    """
    methods = list(methods) if methods is not None else default_methods()
    points = []
    for fraction in fractions:
        correlation = (
            Correlation.STRONG_POSITIVE if fraction == 0 else Correlation.WEAK_POSITIVE
        )
        config = TypeIConfig(
            domain_size=domain_size,
            relation_size=relation_size,
            z1=0.5,
            z2=1.0,
            correlation=correlation,
            permute_fraction=fraction,
        )

        def gen(
            rng: np.random.Generator, config: TypeIConfig = config
        ) -> ChainDataset:
            c1, c2 = make_type1_pair(config, rng)
            d = [[Domain.of_size(domain_size)], [Domain.of_size(domain_size)]]
            return [c1, c2], d

        points.append(
            SweepPoint(fraction, _mean_errors(gen, budget, trials, seed, methods))
        )
    return points


def domain_size_sweep(
    domain_sizes: Sequence[int] = (1_000, 2_000, 5_000, 10_000),
    coefficient_fraction: float = 0.05,
    relation_size: int = 200_000,
    trials: int = 3,
    seed: int = 0,
    methods: Sequence[Method] | None = None,
) -> list[SweepPoint]:
    """Error vs domain size at a fixed coefficient fraction of the domain.

    Probes the scaling toward the paper's n = 10^5: if the error at a fixed
    m/n ratio is roughly stable, reproduction-scale results transfer.
    """
    methods = list(methods) if methods is not None else default_methods()
    points = []
    for n in domain_sizes:
        config = TypeIConfig(
            domain_size=n,
            relation_size=relation_size,
            z1=0.5,
            z2=1.0,
            correlation=Correlation.INDEPENDENT,
        )
        budget = max(8, int(n * coefficient_fraction))

        def gen(
            rng: np.random.Generator, config: TypeIConfig = config, n: int = n
        ) -> ChainDataset:
            c1, c2 = make_type1_pair(config, rng)
            return [c1, c2], [[Domain.of_size(n)], [Domain.of_size(n)]]

        points.append(
            SweepPoint(float(n), _mean_errors(gen, budget, trials, seed, methods))
        )
    return points


@dataclass(frozen=True)
class BoundPoint:
    """Measured cosine error vs the Eq. 4.8 worst-case bound at one budget."""

    budget: int
    measured: float
    bound: float


def bound_tightness_sweep(
    budgets: Sequence[int] = (25, 50, 100, 250, 500, 1000, 2500),
    domain_size: int = 5_000,
    relation_size: int = 200_000,
    trials: int = 3,
    seed: int = 0,
) -> list[BoundPoint]:
    """The Eq. 4.8 guarantee vs reality on independent Type I data.

    The bound must always dominate; the interesting output is *by how
    much* — typically several orders of magnitude, which is the paper's
    implicit argument for measuring instead of bounding.
    """
    from .methods import CosineMethod

    rng = np.random.default_rng(seed)
    config = TypeIConfig(
        domain_size=domain_size,
        relation_size=relation_size,
        z1=0.5,
        z2=1.0,
        correlation=Correlation.INDEPENDENT,
    )
    measured: dict[int, list[float]] = {b: [] for b in budgets}
    bounds: dict[int, list[float]] = {b: [] for b in budgets}
    for _ in range(trials):
        c1, c2 = make_type1_pair(config, rng)
        actual = float(c1 @ c2)
        doms = [[Domain.of_size(domain_size)], [Domain.of_size(domain_size)]]
        prepared = CosineMethod().prepare([c1, c2], doms, max(budgets), rng)
        for budget in budgets:
            estimate = prepared.estimate(budget)
            measured[budget].append(abs(actual - estimate) / actual)
            bounds[budget].append(
                relative_error_bound(
                    actual, int(c1.sum()), int(c2.sum()), domain_size, budget
                )
            )
    return [
        BoundPoint(
            budget=b,
            measured=float(np.mean(measured[b])),
            bound=float(np.mean(bounds[b])),
        )
        for b in budgets
    ]
