"""Command-line front end for the experiment harness.

Usage (installed as the ``repro-experiments`` console script, or via
``python -m repro.experiments.cli``):

    repro-experiments list
    repro-experiments run fig03 [--trials 5] [--seed 0] [--budgets 100,500]
    repro-experiments run all
    repro-experiments speed [--size 10000]
    repro-experiments stats [--tuples 20000] [--batch 1024] [--methods cosine,...]
    repro-experiments monitor [--tuples 30000] [--jsonl snap.jsonl] [--prom out.prom]
    repro-experiments monitor --serve-metrics 9100   # live GET /metrics endpoint
    repro-experiments monitor --checkpoint-dir ckpts [--checkpoint-every 8192]
    repro-experiments resume --checkpoint-dir ckpts

User errors (bad paths, unknown figures/methods, unreadable checkpoints)
exit non-zero with a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.otel import OtelPushLoop, SpanSource

from .figures import FIGURES
from .harness import run_experiment
from .report import (
    ascii_chart,
    format_comparison_summary,
    format_result,
    result_to_dict,
)
from .speed import measure_speed
from .sweeps import (
    bound_tightness_sweep,
    correlation_sweep,
    domain_size_sweep,
    skew_sweep,
)


def _cmd_list(args: argparse.Namespace) -> int:
    width = max(len(config.title) for config in FIGURES.values())
    for figure_id in sorted(FIGURES):
        config = FIGURES[figure_id]
        budgets = f"{config.budgets[0]}..{config.budgets[-1]}"
        print(f"{figure_id}  {config.title:<{width}}  space {budgets}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.figure == "all":
        figure_ids = sorted(FIGURES)
    elif args.figure in FIGURES:
        figure_ids = [args.figure]
    else:
        print(
            f"unknown figure {args.figure!r}; try 'list' for the catalogue",
            file=sys.stderr,
        )
        return 2
    budgets = None
    if args.budgets:
        budgets = tuple(int(b) for b in args.budgets.split(","))
    exported = []
    for figure_id in figure_ids:
        result = run_experiment(
            FIGURES[figure_id], seed=args.seed, trials=args.trials, budgets=budgets
        )
        print(format_result(result))
        if args.chart:
            print(ascii_chart(result))
        print(format_comparison_summary(result))
        print()
        exported.append(result_to_dict(result))
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps(exported, indent=1))
        print(f"wrote {args.json}")
    return 0


def _cmd_speed(args: argparse.Namespace) -> int:
    report = measure_speed(synopsis_size=args.size)
    print(report.summary())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Demo ingest/answer cycle printing the engine's instrumentation."""
    import numpy as np

    from ..core.normalization import Domain
    from ..streams import JoinQuery, StreamEngine

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    engine = StreamEngine(seed=args.seed)
    domain = Domain.of_size(args.domain)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in methods:
        options = {"probability": 0.1} if method == "sample" else {}
        engine.register_query(f"q_{method}", query, method=method, budget=args.budget, **options)

    rng = np.random.default_rng(args.seed)
    for name in ("R1", "R2"):
        rows = ((rng.zipf(1.3, size=args.tuples) - 1) % args.domain)[:, None]
        if args.batch <= 1:
            for value in rows[:, 0]:
                engine.insert(name, (int(value),))
        else:
            for lo in range(0, args.tuples, args.batch):
                engine.ingest_batch(name, rows[lo : lo + args.batch])

    print(f"estimates after {2 * args.tuples:,} tuples (batch size {args.batch}):")
    exact = engine.exact_join_size(query)
    for name, estimate in engine.answers().items():
        print(f"  {name:<24} {estimate:>14,.1f}   (exact {exact:,.0f})")
    print()
    print(engine.stats().summary())
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    """Demo: point estimates vs guaranteed upper bounds vs clamped answers."""
    import numpy as np

    from ..core.normalization import Domain
    from ..streams import JoinQuery, StreamEngine

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    engine = StreamEngine(seed=args.seed)
    domain = Domain.of_size(args.domain)
    if args.three_way:
        inner = Domain.of_size(max(2, args.domain // 2))
        engine.create_relation("R1", ["A"], [domain])
        engine.create_relation("R2", ["A", "B"], [domain, inner])
        engine.create_relation("R3", ["B"], [inner])
        query = JoinQuery.parse(
            ["R1", "R2", "R3"], ["R1.A = R2.A", "R2.B = R3.B"]
        )
    else:
        engine.create_relation("R1", ["A"], [domain])
        engine.create_relation("R2", ["A"], [domain])
        query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    try:
        for method in methods:
            engine.register_query(
                f"q_{method}", query, method=method, budget=args.budget, bounds=True
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    for name, relation in engine.relations.items():
        columns = [
            ((rng.zipf(1.3, size=args.tuples) - 1) % d.size)
            for d in relation.domains
        ]
        engine.ingest_batch(name, np.stack(columns, axis=1))

    exact = engine.exact_join_size(query)
    shape = "3-way chain" if args.three_way else "2-way equi-join"
    print(
        f"{shape}, {args.tuples:,} zipf tuples per relation "
        f"(domain {args.domain}, budget {args.budget}):"
    )
    print(
        f"  {'method':<20} {'estimate':>14} {'upper bound':>14}"
        f" {'clamped':>14} {'clamp':>6}"
    )
    for method in methods:
        report = engine.bound_report(f"q_{method}")
        assert report is not None
        fired = "yes" if report["clamp_fired"] else "-"
        print(
            f"  {method:<20} {report['estimate']:>14,.1f}"
            f" {report['upper_bound']:>14,.1f}"
            f" {report['clamped']:>14,.1f} {fired:>6}"
        )
    print(f"  {'exact':<20} {exact:>14,.1f}")
    print()
    print(
        "every bound above is guaranteed: exact <= upper bound holds for any\n"
        "stream, and the clamped answer never exceeds it (see docs/BOUNDS.md)"
    )
    return 0


def _build_otel_loop(
    args: argparse.Namespace,
    metrics: MetricsRegistry | Callable[[], MetricsRegistry] | None,
    spans: SpanSource | None,
    registry: MetricsRegistry | None = None,
) -> OtelPushLoop | None:
    """An OTLP push loop from ``--otlp-endpoint``/``--otlp-file``, or ``None``.

    ``--otlp-endpoint`` wins when both are given (a collector is the
    richer sink); ``--otlp-file -`` streams OTLP/JSON lines to stdout.
    """
    if not (args.otlp_endpoint or args.otlp_file):
        return None
    from ..obs.otel import OtelPushLoop, OtlpHttpExporter, OtlpJsonFileExporter

    if args.otlp_endpoint:
        exporter = OtlpHttpExporter(args.otlp_endpoint)
    else:
        exporter = OtlpJsonFileExporter(args.otlp_file)
    return OtelPushLoop(
        exporter, metrics=metrics, spans=spans, every_s=args.otlp_every, registry=registry
    )


def _finish_otel(otel: OtelPushLoop | None, args: argparse.Namespace) -> None:
    """Final flush plus a one-line export/drop account."""
    if otel is None:
        return
    otel.push_now()
    exporter = otel.exporter
    target = args.otlp_endpoint or (
        "stdout" if args.otlp_file == "-" else args.otlp_file
    )
    print(
        f"OTLP export to {target}: {exporter.exports} payloads"
        f" ({exporter.retries} retries, {exporter.drops} dropped)"
    )


def _monitor_sharded(args: argparse.Namespace, methods: list[str]) -> int:
    """The ``monitor`` loop over a :class:`ShardedStreamEngine` fleet.

    Same synthetic workload and sinks as the single-engine path, but the
    stream is hash-partitioned across ``--shards`` workers via the chosen
    ``--executor``.  Each refresh prints the merged fleet counters plus a
    per-shard occupancy line; ``--jsonl`` snapshots carry per-shard
    stats, ``--prom`` exports the merged fleet registry, and
    ``--checkpoint-dir`` writes one rotated store per shard plus the
    fleet manifest (recoverable with the ``resume`` subcommand).
    """
    from time import perf_counter

    import numpy as np

    from ..core.normalization import Domain
    from ..obs import JsonlSnapshotWriter, MetricsRegistry, prometheus_text
    from ..sharding import ShardedStreamEngine
    from ..streams import JoinQuery

    fleet = ShardedStreamEngine(
        num_shards=args.shards, seed=args.seed, executor=args.executor
    )
    domain = Domain.of_size(args.domain)
    fleet.create_relation("R1", ["A"], [domain])
    fleet.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in methods:
        options = {"probability": 0.1} if method == "sample" else {}
        fleet.register_query(
            f"q_{method}", query, method=method, budget=args.budget, **options
        )

    writer = JsonlSnapshotWriter(args.jsonl) if args.jsonl else None
    server = None
    if args.serve_metrics is not None:
        from ..obs import MetricsServer

        # A provider, not a registry: the merged fleet registry is rebuilt
        # on every scrape so per-shard counters stay current.
        server = MetricsServer(fleet.fleet_metrics, port=args.serve_metrics).start()
        print(f"serving metrics at {server.url}")
    # The merged fleet registry is rebuilt per push, so the export
    # self-metrics live in a stable registry merged in on top.
    own_registry = MetricsRegistry()
    otel = _build_otel_loop(
        args,
        metrics=lambda: fleet.fleet_metrics().merge(own_registry),
        spans=fleet.drain_spans,
        registry=own_registry,
    )
    start = perf_counter()

    def render() -> None:
        elapsed = perf_counter() - start
        stats = fleet.shard_stats()
        total = sum(s["tuples_ingested"] for s in stats)
        rate = total / elapsed if elapsed > 0 else 0.0
        print(
            f"[{elapsed:7.2f}s] {total:>12,} ops over {args.shards} shards"
            f" ({args.executor}), {rate:>12,.0f} ops/s"
        )
        occupancy = "  ".join(
            f"s{i}:{s['tuples_ingested']:,}" for i, s in enumerate(stats)
        )
        print(f"           {occupancy}")

    def snapshot() -> dict[str, Any]:
        return {"shards": fleet.shard_stats(), "answers": fleet.answers()}

    rng = np.random.default_rng(args.seed)
    rows = {
        name: ((rng.zipf(1.3, size=args.tuples) - 1) % args.domain)[:, None]
        for name in ("R1", "R2")
    }
    batch = max(1, args.batch)
    since_refresh = 0
    since_checkpoint = 0
    for lo in range(0, args.tuples, batch):
        for name in ("R1", "R2"):
            chunk = rows[name][lo : lo + batch]
            fleet.ingest_batch(name, chunk)
            since_refresh += chunk.shape[0]
            since_checkpoint += chunk.shape[0]
        if since_refresh >= args.refresh_every:
            since_refresh = 0
            render()
            if writer is not None:
                writer.write(snapshot())
        if otel is not None:
            otel.maybe_push()
        if args.checkpoint_dir and since_checkpoint >= args.checkpoint_every:
            since_checkpoint = 0
            fleet.save_checkpoints(args.checkpoint_dir, keep=args.checkpoint_keep)
    render()
    print("final estimates:")
    for name, estimate in fleet.answers().items():
        print(f"  {name:<24} {estimate:>14,.1f}")
    if writer is not None:
        writer.write(snapshot())
        print(f"wrote {writer.snapshots_written} snapshots to {args.jsonl}")
    if args.checkpoint_dir:
        fleet.save_checkpoints(args.checkpoint_dir, keep=args.checkpoint_keep)
        print(f"wrote per-shard checkpoints + fleet manifest to {args.checkpoint_dir}")
    if args.prom:
        from pathlib import Path

        Path(args.prom).write_text(prometheus_text(fleet.fleet_metrics()))
        print(f"wrote Prometheus exposition to {args.prom}")
    _finish_otel(otel, args)
    if server is not None:
        server.stop()
    fleet.close()
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Ingest a synthetic stream and render a live-refreshing stats table.

    The full telemetry loop in one command: a
    :class:`~repro.streams.engine.StreamEngine` with queries registered
    per requested method, online accuracy tracking at a configurable
    cadence, and a dashboard (counters, estimate-latency percentiles,
    per-query streaming relative error, recent spans) re-rendered every
    ``--refresh-every`` ingested tuples.  Optional sinks: ``--jsonl``
    appends a snapshot per refresh, ``--prom`` writes the final registry
    in Prometheus text exposition format.  With ``--checkpoint-dir`` set,
    the engine is checkpointed every ``--checkpoint-every`` ingested
    tuples (rotated, last ``--checkpoint-keep`` files kept) so a crashed
    monitor can be resumed with the ``resume`` subcommand.  With
    ``--shards N`` (N > 1) the same workload runs against a
    :class:`~repro.sharding.ShardedStreamEngine` fleet instead.
    """
    import sys as _sys
    from time import perf_counter

    import numpy as np

    from ..core.normalization import Domain
    from ..obs import JsonlSnapshotWriter, Telemetry, prometheus_text, render_dashboard
    from ..streams import JoinQuery, StreamEngine

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    if args.shards > 1:
        return _monitor_sharded(args, methods)
    engine = StreamEngine(
        seed=args.seed,
        telemetry=Telemetry(trace_sample_every=args.trace_sample),
    )
    domain = Domain.of_size(args.domain)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in methods:
        options = {"probability": 0.1} if method == "sample" else {}
        engine.register_query(
            f"q_{method}", query, method=method, budget=args.budget, **options
        )
    tracker = engine.track_accuracy(every_ops=args.accuracy_every)
    writer = (
        JsonlSnapshotWriter(args.jsonl, registry=engine.telemetry.registry)
        if args.jsonl
        else None
    )
    store = None
    if args.checkpoint_dir:
        from ..resilience import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir, keep=args.checkpoint_keep)
    server = None
    if args.serve_metrics is not None:
        from ..obs import MetricsServer

        server = MetricsServer(
            engine.telemetry.registry, port=args.serve_metrics
        ).start()
        print(f"serving metrics at {server.url}")
    tracer = engine.telemetry.tracer
    otel = _build_otel_loop(
        args,
        metrics=engine.telemetry.registry,
        spans=(lambda: [({}, tracer.drain())]) if tracer is not None else None,
    )

    def snapshot() -> dict[str, Any]:
        return {"stats": engine.stats().as_dict(), "accuracy": tracker.as_dict()}

    clear_screen = _sys.stdout.isatty() and not args.no_clear
    start = perf_counter()

    def render() -> None:
        if clear_screen:
            print("\x1b[2J\x1b[H", end="")
        print(
            render_dashboard(
                engine.stats(),
                accuracy=tracker,
                tracer=engine.telemetry.tracer,
                elapsed_s=perf_counter() - start,
            )
        )
        if not clear_screen:
            print("-" * 72)

    rng = np.random.default_rng(args.seed)
    rows = {
        name: ((rng.zipf(1.3, size=args.tuples) - 1) % args.domain)[:, None]
        for name in ("R1", "R2")
    }
    batch = max(1, args.batch)
    since_refresh = 0
    since_checkpoint = 0
    for lo in range(0, args.tuples, batch):
        for name in ("R1", "R2"):
            chunk = rows[name][lo : lo + batch]
            engine.ingest_batch(name, chunk)
            since_refresh += chunk.shape[0]
            since_checkpoint += chunk.shape[0]
        if since_refresh >= args.refresh_every:
            since_refresh = 0
            render()
            if writer is not None:
                writer.write(snapshot())
        if otel is not None:
            otel.maybe_push()
        if store is not None and since_checkpoint >= args.checkpoint_every:
            since_checkpoint = 0
            store.save(engine)
    engine.answers()  # leave final estimate latencies in the histogram
    render()
    if writer is not None:
        writer.write(snapshot())
        print(f"wrote {writer.snapshots_written} snapshots to {args.jsonl}")
    if store is not None:
        final = store.save(engine)
        print(
            f"wrote checkpoint {final.name} "
            f"({len(store.paths())} kept in {args.checkpoint_dir})"
        )
    if args.prom:
        from pathlib import Path

        Path(args.prom).write_text(prometheus_text(engine.telemetry.registry))
        print(f"wrote Prometheus exposition to {args.prom}")
    _finish_otel(otel, args)
    if server is not None:
        server.stop()
    return 0


def _resume_sharded(args: argparse.Namespace) -> int:
    """Restore a sharded fleet from its manifest and print its state."""
    from ..resilience import DegradedQueryError
    from ..sharding import ShardedStreamEngine

    with ShardedStreamEngine.restore(args.checkpoint_dir) as fleet:
        print(
            f"restored {fleet.num_shards}-shard fleet from {args.checkpoint_dir}"
        )
        for name in fleet.relation_names():
            print(f"  relation {name:<8} {fleet.total_count(name):>12,} tuples")
        for name in fleet.query_names():
            try:
                estimate = fleet.answer(name)
            except DegradedQueryError as exc:
                print(f"  query {name:<20} degraded ({exc.reason})")
            else:
                print(f"  query {name:<20} {estimate:>14,.1f}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Restore the newest checkpoint in a directory and print its state.

    Recovery smoke test in one command: load the latest rotated
    checkpoint written by ``monitor --checkpoint-dir`` (or any
    :class:`~repro.resilience.CheckpointStore` user), then print the
    restored relation cardinalities and every registered query's answer.
    Degraded queries (an observer was quarantined before the checkpoint)
    are reported as such instead of aborting the listing.  A directory
    holding a fleet manifest (written by ``monitor --shards N``) is
    detected automatically and restored as a whole
    :class:`~repro.sharding.ShardedStreamEngine` fleet.
    """
    from pathlib import Path

    from ..resilience import CheckpointStore, DegradedQueryError
    from ..streams import StreamEngine

    if (Path(args.checkpoint_dir) / "fleet-manifest.json").exists():
        return _resume_sharded(args)
    store = CheckpointStore(args.checkpoint_dir)
    latest = store.latest()
    if latest is None:
        print(f"no checkpoints found in {args.checkpoint_dir}", file=sys.stderr)
        return 2
    engine = StreamEngine.load_checkpoint(latest)
    print(f"restored {latest.name} from {args.checkpoint_dir}")
    for name, relation in engine.relations.items():
        print(f"  relation {name:<8} {relation.count:>12,} tuples")
    for name in engine.query_names():
        try:
            estimate = engine.answer(name)
        except DegradedQueryError as exc:
            print(f"  query {name:<20} degraded ({exc.reason})")
        else:
            print(f"  query {name:<20} {estimate:>14,.1f}")
    return 0


_SWEEPS = {
    "skew": skew_sweep,
    "correlation": correlation_sweep,
    "domain": domain_size_sweep,
}


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived fleet serving daemon.

    Starts an (initially empty) :class:`~repro.sharding.ShardedStreamEngine`
    — by default behind the supervised ``socket`` executor, so crashed
    shard workers restart and replay themselves — and serves it over the
    newline-JSON protocol of :class:`~repro.fleet.FleetServer`.  Clients
    create relations, register queries, ingest, and query concurrently;
    ``--policy partial`` answers from surviving shards (flagged and
    survivor-scaled) when a shard is lost beyond recovery instead of
    erroring.  ``--max-seconds`` bounds the run for smoke tests and CI;
    the default serves until interrupted.
    """
    import asyncio

    from ..fleet import FleetServer
    from ..sharding import ShardedStreamEngine

    if args.executor == "socket":
        from ..fleet.executor import SocketExecutor

        executor: object = SocketExecutor(
            max_restarts=args.max_restarts,
            heartbeat_interval=args.heartbeat_interval,
        )
    else:
        executor = args.executor
    fleet = ShardedStreamEngine(
        num_shards=args.shards, seed=args.seed, executor=executor
    )
    if args.dead_letter_capacity > 0:
        fleet.enable_dead_lettering(args.dead_letter_capacity)
    server = FleetServer(
        fleet, host=args.host, port=args.port, policy=args.policy
    )

    async def run() -> None:
        await server.start()
        host, port = server.address
        print(
            f"serving {args.shards}-shard fleet at {host}:{port} "
            f"(executor={args.executor}, policy={args.policy})",
            flush=True,
        )
        try:
            if args.max_seconds is not None:
                try:
                    await asyncio.wait_for(
                        server.serve_forever(), timeout=args.max_seconds
                    )
                except asyncio.TimeoutError:
                    pass
            else:
                await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    finally:
        fleet.close()
    return 0


def _cmd_deadletters(args: argparse.Namespace) -> int:
    """Inspect — or with ``--replay``, re-ingest — a daemon's dead letters.

    Talks to a running ``serve`` daemon.  Without flags, prints the
    buffer's accounting and most recent entries.  With ``--replay``,
    every buffered row is re-validated and re-ingested through the
    normal partitioned path; rows that are still malformed stay
    buffered, and the partial-success breakdown is printed per relation.
    """
    from ..fleet import FleetClient

    with FleetClient(args.host, args.port) as client:
        response = client.request("deadletters", replay=bool(args.replay))
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 2
    if args.replay:
        report = response["replay"]
        print(
            f"replayed {report['attempted']} dead letters: "
            f"{report['ingested']} re-ingested, {report['still_dead']} still dead"
        )
        for relation, count in sorted(report["by_relation"].items()):
            print(f"  {relation:<12} {count} re-ingested")
    else:
        snap = response["deadletters"]
        print(
            f"dead letters: {snap['held']} held / capacity {snap['capacity']} "
            f"(total {snap['total']}, dropped {snap['dropped']})"
        )
        for letter in snap["tail"]:
            print(
                f"  {letter['relation']:<10} {letter['kind']:<7} "
                f"{letter['reason']:<14} {letter['row']}"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis == "bound":
        points = bound_tightness_sweep(trials=args.trials, seed=args.seed)
        print(f"{'space':>7}  {'measured':>10}  {'bound':>12}")
        for p in points:
            print(
                f"{p.budget:>7}  {p.measured * 100:>9.3f}%  {p.bound * 100:>11.1f}%"
            )
        return 0
    if args.axis not in _SWEEPS:
        print(f"unknown sweep axis {args.axis!r}", file=sys.stderr)
        return 2
    points = _SWEEPS[args.axis](trials=args.trials, seed=args.seed)
    methods = list(points[0].errors)
    print(f"{'param':>9}  " + "  ".join(f"{m:>15}" for m in methods))
    for point in points:
        print(
            f"{point.parameter:>9.3g}  "
            + "  ".join(f"{point.errors[m] * 100:>14.2f}%" for m in methods)
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's section 5 experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the figure catalogue").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one figure's sweep (or 'all')")
    run.add_argument("figure", help="fig01..fig20, or 'all'")
    run.add_argument("--trials", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--budgets", help="comma-separated space budgets")
    run.add_argument("--chart", action="store_true", help="render an ASCII error chart")
    run.add_argument("--json", help="also write the raw series to this JSON file")
    run.set_defaults(func=_cmd_run)

    speed = sub.add_parser("speed", help="measure the section 5.4 timings")
    speed.add_argument("--size", type=int, default=10_000)
    speed.set_defaults(func=_cmd_speed)

    stats = sub.add_parser(
        "stats", help="run a demo ingest/answer cycle and print engine counters"
    )
    stats.add_argument("--tuples", type=int, default=20_000, help="tuples per relation")
    stats.add_argument("--batch", type=int, default=1024, help="ingest batch size (1 = per-tuple)")
    stats.add_argument("--domain", type=int, default=10_000)
    stats.add_argument("--budget", type=int, default=200)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--methods",
        default="cosine,basic_sketch,sample,histogram,wavelet",
        help="comma-separated estimation methods to register",
    )
    stats.set_defaults(func=_cmd_stats)

    bounds = sub.add_parser(
        "bounds",
        help="compare point estimates against guaranteed upper bounds and clamps",
    )
    bounds.add_argument("--tuples", type=int, default=20_000, help="tuples per relation")
    bounds.add_argument("--domain", type=int, default=1_000)
    bounds.add_argument("--budget", type=int, default=200)
    bounds.add_argument("--seed", type=int, default=0)
    bounds.add_argument(
        "--methods",
        default="cosine,basic_sketch,sample,histogram",
        help="comma-separated estimation methods to register with bounds=True",
    )
    bounds.add_argument(
        "--three-way",
        action="store_true",
        help="use a 3-way chain join R1.A=R2.A, R2.B=R3.B instead of a 2-way join",
    )
    bounds.set_defaults(func=_cmd_bounds)

    monitor = sub.add_parser(
        "monitor",
        help="ingest a synthetic stream with live telemetry dashboard refreshes",
    )
    monitor.add_argument("--tuples", type=int, default=30_000, help="tuples per relation")
    monitor.add_argument("--batch", type=int, default=1024, help="ingest batch size")
    monitor.add_argument("--domain", type=int, default=10_000)
    monitor.add_argument("--budget", type=int, default=200)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--methods",
        default="cosine,basic_sketch",
        help="comma-separated estimation methods to register",
    )
    monitor.add_argument(
        "--refresh-every",
        type=int,
        default=8192,
        help="re-render the dashboard every this many ingested tuples",
    )
    monitor.add_argument(
        "--accuracy-every",
        type=int,
        default=4096,
        help="sample estimate-vs-exact relative error every this many tuples",
    )
    monitor.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="record ~1 in N hot-path trace spans instead of all of them "
        "(cuts tracing overhead on per-tuple workloads; default records all)",
    )
    monitor.add_argument("--jsonl", help="append a JSONL telemetry snapshot per refresh")
    monitor.add_argument(
        "--prom", help="write the final registry in Prometheus text format here"
    )
    monitor.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics (Prometheus text) on this port while "
        "ingesting (0 picks a free port)",
    )
    monitor.add_argument(
        "--no-clear",
        action="store_true",
        help="never clear the screen between refreshes (e.g. when piping)",
    )
    monitor.add_argument(
        "--checkpoint-dir",
        help="write rotated engine checkpoints into this directory",
    )
    monitor.add_argument(
        "--checkpoint-every",
        type=int,
        default=8192,
        help="checkpoint every this many ingested tuples",
    )
    monitor.add_argument(
        "--checkpoint-keep",
        type=int,
        default=3,
        help="how many rotated checkpoints to retain",
    )
    monitor.add_argument(
        "--otlp-endpoint",
        metavar="URL",
        help="push spans and metrics as OTLP/JSON to this collector base URL "
        "(e.g. http://localhost:4318)",
    )
    monitor.add_argument(
        "--otlp-file",
        metavar="PATH",
        help="append OTLP/JSON payload lines to this file instead of a "
        "collector ('-' streams to stdout)",
    )
    monitor.add_argument(
        "--otlp-every",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="minimum seconds between OTLP pushes",
    )
    monitor.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the stream across this many engine shards (>1 enables sharding)",
    )
    monitor.add_argument(
        "--executor",
        default="serial",
        choices=["serial", "thread", "process", "socket"],
        help="shard executor backend (with --shards > 1)",
    )
    monitor.set_defaults(func=_cmd_monitor)

    serve = sub.add_parser(
        "serve",
        help="run the fleet serving daemon (newline-JSON over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="port to bind (0 picks a free one)"
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--executor",
        default="socket",
        choices=["serial", "thread", "process", "socket"],
        help="shard executor backend (socket = supervised worker processes)",
    )
    serve.add_argument(
        "--policy",
        default="raise",
        choices=["raise", "partial"],
        help="default query policy when shards are lost beyond recovery",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="supervised restarts per shard before it is marked down",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ping idle shard workers this often (default: command-path "
        "detection only)",
    )
    serve.add_argument(
        "--dead-letter-capacity",
        type=int,
        default=1024,
        help="fleet dead-letter buffer size (0 disables dead-lettering)",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit after this many seconds (for smoke tests; default: forever)",
    )
    serve.set_defaults(func=_cmd_serve)

    deadletters = sub.add_parser(
        "deadletters",
        help="inspect or replay a running serve daemon's dead-letter buffer",
    )
    deadletters.add_argument("--host", default="127.0.0.1")
    deadletters.add_argument("--port", type=int, required=True)
    deadletters.add_argument(
        "--replay",
        action="store_true",
        help="re-validate and re-ingest every buffered row",
    )
    deadletters.set_defaults(func=_cmd_deadletters)

    resume = sub.add_parser(
        "resume",
        help="restore the newest checkpoint and print the recovered state",
    )
    resume.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory of rotated checkpoints to recover from",
    )
    resume.set_defaults(func=_cmd_resume)

    sweep = sub.add_parser(
        "sweep", help="sensitivity sweeps: skew | correlation | domain | bound"
    )
    sweep.add_argument("axis", choices=["skew", "correlation", "domain", "bound"])
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        from ..resilience.errors import ResilienceError

        if isinstance(exc, (OSError, ValueError, KeyError, ResilienceError)):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    raise SystemExit(main())
