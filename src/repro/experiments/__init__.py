"""The section 5 experiment harness: methods, figure configs, and timing."""

from .figures import FIGURES, FigureScales, make_figures
from .harness import (
    ExperimentConfig,
    ExperimentResult,
    MethodSeries,
    chain_slot_pairs,
    exact_chain_join_size,
    run_experiment,
)
from .methods import (
    BasicSketchMethod,
    CosineMethod,
    HistogramMethod,
    SamplingMethod,
    SkimmedSketchMethod,
    default_methods,
    extended_methods,
)
from .report import ascii_chart, format_comparison_summary, format_result, result_to_dict
from .speed import PAPER_SYNOPSIS_SIZE, SpeedReport, measure_speed
from .sweeps import (
    BoundPoint,
    SweepPoint,
    bound_tightness_sweep,
    correlation_sweep,
    domain_size_sweep,
    skew_sweep,
)

__all__ = [
    "FIGURES",
    "FigureScales",
    "make_figures",
    "ExperimentConfig",
    "ExperimentResult",
    "MethodSeries",
    "chain_slot_pairs",
    "exact_chain_join_size",
    "run_experiment",
    "BasicSketchMethod",
    "CosineMethod",
    "HistogramMethod",
    "SamplingMethod",
    "SkimmedSketchMethod",
    "default_methods",
    "extended_methods",
    "ascii_chart",
    "format_comparison_summary",
    "format_result",
    "result_to_dict",
    "PAPER_SYNOPSIS_SIZE",
    "BoundPoint",
    "SweepPoint",
    "bound_tightness_sweep",
    "correlation_sweep",
    "domain_size_sweep",
    "skew_sweep",
    "SpeedReport",
    "measure_speed",
]
