"""Text rendering of experiment results, in the paper's figure layout.

Each figure is a table of average relative error (%) per storage space,
one column per method — the same series the paper plots.
"""

from __future__ import annotations

from typing import Any

from .harness import ExperimentResult


def format_result(result: ExperimentResult, reference: str = "cosine") -> str:
    """Render one experiment as an aligned text table with ratio columns."""
    config = result.config
    methods = list(result.series)
    header = ["space"] + [f"{m} err%" for m in methods]
    ratio_methods = [m for m in methods if m != reference and reference in result.series]
    header += [f"{m}/{reference}" for m in ratio_methods]

    rows: list[list[str]] = []
    for budget in result.series[methods[0]].budgets:
        row = [str(budget)]
        for m in methods:
            row.append(f"{result.mean_error(m, budget) * 100:.2f}")
        for m in ratio_methods:
            row.append(f"{result.error_ratio(m, reference, budget):.1f}x")
        rows.append(row)

    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(header)]
    lines = [
        f"{config.name}: {config.title}",
        f"trials: {len(result.actual_sizes)}, "
        f"mean actual join size: {sum(result.actual_sizes) / len(result.actual_sizes):.3e}",
    ]
    if config.expectation:
        lines.append(f"paper expectation: {config.expectation}")
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Serialize an experiment result to plain JSON-compatible types.

    For piping results into external plotting or archival: figure metadata,
    every method's per-budget trial errors, and the trial ground truths.
    """
    return {
        "name": result.config.name,
        "title": result.config.title,
        "expectation": result.config.expectation,
        "actual_sizes": [float(a) for a in result.actual_sizes],
        "budgets": list(result.series[next(iter(result.series))].budgets),
        "series": {
            method: {
                str(budget): [float(e) for e in series.errors[budget]]
                for budget in series.budgets
            }
            for method, series in result.series.items()
        },
    }


def ascii_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 16,
    log_scale: bool = True,
) -> str:
    """Render the error curves as an ASCII chart (error vs space).

    One mark per method (``1``, ``2``, ... in series order; ``*`` where
    methods overlap), y axis is relative error (log scale by default,
    matching how the paper's figures are best read), x axis is the space
    budget.  A plotting-library-free stand-in for the paper's figures.
    """
    import math

    methods = list(result.series)
    budgets = list(result.series[methods[0]].budgets)
    if len(budgets) < 2:
        raise ValueError("a chart needs at least two budgets")

    floor = 1e-6  # zero errors clip here on the log scale
    values = {
        m: [max(result.mean_error(m, b), floor) for b in budgets] for m in methods
    }
    transform = (lambda v: math.log10(v)) if log_scale else (lambda v: v)
    lo = min(transform(v) for series in values.values() for v in series)
    hi = max(transform(v) for series in values.values() for v in series)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = budgets[0], budgets[-1]
    for mark, method in enumerate(methods, start=1):
        for budget, value in zip(budgets, values[method]):
            x = round((budget - x_lo) / (x_hi - x_lo) * (width - 1))
            y = round((transform(value) - lo) / (hi - lo) * (height - 1))
            row, col = height - 1 - y, x
            grid[row][col] = "*" if grid[row][col] not in (" ", str(mark)) else str(mark)

    def y_label(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        value = lo + frac * (hi - lo)
        shown = 10**value if log_scale else value
        return f"{shown * 100:9.2g}%"

    lines = [f"{result.config.name}: relative error vs space"]
    for row in range(height):
        label = y_label(row) if row % 4 == 0 or row == height - 1 else " " * 10
        lines.append(f"{label} |{''.join(grid[row])}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':10}  {x_lo}{str(x_hi).rjust(width - len(str(x_lo)) - 1)}")
    legend = "   ".join(f"{i}={m}" for i, m in enumerate(methods, start=1))
    lines.append(f"{'':10}  {legend}   (*=overlap)")
    return "\n".join(lines)


def format_comparison_summary(result: ExperimentResult, reference: str = "cosine") -> str:
    """One-line verdict: who wins at the largest budget and by how much."""
    budget = result.series[reference].budgets[-1]
    winner = result.winner(budget)
    parts = [f"{result.config.name}: winner at space {budget} is {winner}"]
    for m in result.series:
        if m == reference:
            continue
        parts.append(f"{m} error is {result.error_ratio(m, reference, budget):.1f}x {reference}'s")
    return "; ".join(parts)
