"""The experiment harness: budget sweeps of relative error, paper-style.

Section 5.1 protocol: every query is executed over many freshly generated
relation instances; methods are compared at equal storage space (number of
coefficients / atomic sketches per relation); the measure is the average
relative error ``|Act - Est| / Act``.

:func:`run_experiment` executes one figure's sweep: per trial it generates
a chain dataset, computes the exact join size, prepares every method once
at the largest budget, and reads the whole budget series off the prepared
state (exact truncation / prefix slicing — see
:mod:`repro.experiments.methods`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain
from ..streams.exact import exact_multijoin_size, relative_error
from .methods import Method, default_methods

#: A chain dataset: per-relation count tensors and per-relation domains.
ChainDataset = tuple[list[np.ndarray], list[list[Domain]]]
DataGen = Callable[[np.random.Generator], ChainDataset]


def chain_slot_pairs(arities: Sequence[int]) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Slot pairs of a chain query: relation i's last axis meets i+1's first."""
    return [((i, arities[i] - 1), (i + 1, 0)) for i in range(len(arities) - 1)]


def exact_chain_join_size(relations: Sequence[NDArray[Any]]) -> float:
    """Ground-truth chain join size of a generated dataset."""
    return exact_multijoin_size(
        list(relations), chain_slot_pairs([np.asarray(r).ndim for r in relations])
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """One figure's sweep definition."""

    name: str
    title: str
    datagen: DataGen
    budgets: tuple[int, ...]
    trials: int = 5
    methods_factory: Callable[[], list[Method]] = default_methods
    expectation: str = ""


@dataclass
class MethodSeries:
    """One method's error curve over the budget sweep."""

    method: str
    budgets: tuple[int, ...]
    errors: dict[int, list[float]] = field(default_factory=dict)

    def mean(self, budget: int) -> float:
        return float(np.mean(self.errors[budget]))

    def means(self) -> list[float]:
        return [self.mean(b) for b in self.budgets]

    def std(self, budget: int) -> float:
        return float(np.std(self.errors[budget]))


@dataclass
class ExperimentResult:
    """All series of one experiment plus the per-trial ground truths."""

    config: ExperimentConfig
    series: dict[str, MethodSeries]
    actual_sizes: list[float]

    def mean_error(self, method: str, budget: int) -> float:
        return self.series[method].mean(budget)

    def winner(self, budget: int) -> str:
        """Method with the lowest mean error at a budget."""
        return min(self.series, key=lambda m: self.series[m].mean(budget))

    def error_ratio(self, method: str, reference: str, budget: int) -> float:
        """How many times larger ``method``'s error is than ``reference``'s."""
        ref = self.series[reference].mean(budget)
        if ref == 0:
            return float("inf") if self.series[method].mean(budget) > 0 else 1.0
        return self.series[method].mean(budget) / ref


def run_experiment(
    config: ExperimentConfig,
    seed: int = 0,
    trials: int | None = None,
    budgets: Sequence[int] | None = None,
    methods: Sequence[Method] | None = None,
) -> ExperimentResult:
    """Run one figure's sweep and return every method's error series."""
    trials = trials if trials is not None else config.trials
    budgets = tuple(budgets) if budgets is not None else config.budgets
    method_list = list(methods) if methods is not None else config.methods_factory()
    if trials < 1:
        raise ValueError("at least one trial is required")
    if not budgets:
        raise ValueError("at least one budget is required")

    rng = np.random.default_rng(seed)
    series = {
        m.name: MethodSeries(m.name, budgets, {b: [] for b in budgets})
        for m in method_list
    }
    actual_sizes: list[float] = []

    for _ in range(trials):
        relations, domains = config.datagen(rng)
        actual = exact_chain_join_size(relations)
        if actual <= 0:
            # A degenerate instance (empty join) has no defined relative
            # error; regenerate, as the paper's setups keep joins non-empty.
            continue
        actual_sizes.append(actual)
        for method in method_list:
            prepared = method.prepare(relations, domains, max(budgets), rng)
            for budget in budgets:
                estimate = prepared.estimate(budget)
                series[method.name].errors[budget].append(
                    relative_error(actual, estimate)
                )

    if not actual_sizes:
        raise RuntimeError(
            f"every generated instance of {config.name} had an empty join"
        )
    return ExperimentResult(config=config, series=series, actual_sizes=actual_sizes)
