"""Uniform method adapters for the experiment harness.

Each adapter knows how to summarize the relations of a chain query from
their count tensors and produce a join-size estimate at any space budget
up to the budget it was prepared with.  Preparing once at the maximum
budget and answering every smaller budget from the same synopsis (exact
truncation for the cosine series, atomic-prefix slicing for sketches) is
what makes the paper's budget sweeps cheap to reproduce.

Space accounting follows section 5.1: "the number of coefficients or
atomic sketches" per relation.  The skimmed sketch's extra dense-value
storage is reported separately, as the paper does ("readers are advised to
note the hidden space consumed by the skimmed sketch").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

import numpy as np
from numpy.typing import NDArray

from ..core.join import estimate_chain_join_size
from ..core.normalization import Domain
from ..core.synopsis import CosineSynopsis
from ..histograms.equiwidth import EquiWidthHistogram
from ..histograms.equiwidth import estimate_join_size as histogram_join
from ..sampling.estimators import estimate_chain_join_size_samples
from ..sampling.reservoir import BernoulliSample
from ..sketches.basic import AGMSSketch, slice_sketch, split_budget
from ..sketches.basic import estimate_multijoin_size as sketch_chain
from ..sketches.hashing import SignFamily
from ..sketches.skimmed import estimate_multijoin_size_skimmed

ChainData = Sequence[NDArray[Any]]
ChainDomains = Sequence[Sequence[Domain]]


class ChainEstimator(Protocol):
    """A prepared method instance, ready to answer budget sweeps."""

    def estimate(self, budget: int) -> float: ...  # pragma: no cover - protocol


class Method(Protocol):
    """A named estimation method of the section 5 comparison."""

    name: str

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> ChainEstimator: ...  # pragma: no cover - protocol


def _check_chain(relations: ChainData, domains: ChainDomains) -> None:
    if len(relations) < 2:
        raise ValueError("a chain query needs at least two relations")
    if len(relations) != len(domains):
        raise ValueError("one domain tuple per relation is required")
    for tensor, doms in zip(relations, domains):
        if np.asarray(tensor).ndim != len(doms):
            raise ValueError("relation arity does not match its domains")
    for i in range(len(relations) - 1):
        left = domains[i][-1]
        right = domains[i + 1][0]
        if left.size != right.size:
            raise ValueError(
                f"chain link {i}: unified domain sizes differ ({left.size} vs {right.size})"
            )


# --------------------------------------------------------------------- #
# cosine series (the paper's method)
# --------------------------------------------------------------------- #


@dataclass
class CosineMethod:
    """The paper's cosine-series estimator (sections 3-4)."""

    name: str = "cosine"
    grid: str = "midpoint"
    truncation: str = "triangular"

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> "PreparedCosine":
        _check_chain(relations, domains)
        synopses = [
            CosineSynopsis.from_counts(
                list(doms),
                np.asarray(tensor, dtype=float),
                budget=max_budget,
                truncation=self.truncation,
                grid=self.grid,  # type: ignore[arg-type]
            )
            for tensor, doms in zip(relations, domains)
        ]
        return PreparedCosine(synopses)


@dataclass
class PreparedCosine:
    synopses: list[CosineSynopsis]
    _cache: dict[int, list[CosineSynopsis]] = field(default_factory=dict)

    def estimate(self, budget: int) -> float:
        if budget not in self._cache:
            self._cache[budget] = [
                s.truncated(budget=min(budget, s.num_coefficients))
                if s.num_coefficients > budget
                else s
                for s in self.synopses
            ]
        return estimate_chain_join_size(self._cache[budget])

    def space(self, budget: int) -> int:
        """Actual coefficients stored per relation at this nominal budget."""
        return max(s.num_coefficients for s in self._cache.get(budget, self.synopses))


# --------------------------------------------------------------------- #
# sketches
# --------------------------------------------------------------------- #


def _build_chain_sketches(
    relations: ChainData,
    domains: ChainDomains,
    budget: int,
    rng: np.random.Generator,
    num_medians: int | None,
) -> list[AGMSSketch]:
    """Per-relation AGMS sketches with per-join-attribute shared families."""
    _check_chain(relations, domains)
    s1, s2 = split_budget(budget, num_medians)
    size = s1 * s2
    num_joins = len(relations) - 1
    seeds = [int(rng.integers(1 << 31)) for _ in range(num_joins)]
    families = [
        SignFamily(domains[i][-1].size, size, seed=seeds[i]) for i in range(num_joins)
    ]
    sketches = []
    for i, (tensor, doms) in enumerate(zip(relations, domains)):
        if i == 0:
            fams = [families[0]]
        elif i == len(relations) - 1:
            fams = [families[num_joins - 1]]
        else:
            fams = [families[i - 1], families[i]]
        sketches.append(
            AGMSSketch.from_counts(fams, np.asarray(tensor, dtype=float), s1, s2)
        )
    return sketches


@dataclass
class BasicSketchMethod:
    """Alon et al.'s basic AGMS sketch [2, 3]."""

    name: str = "basic_sketch"
    num_medians: int | None = None

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> "PreparedSketch":
        sketches = _build_chain_sketches(
            relations, domains, max_budget, rng, self.num_medians
        )
        return PreparedSketch(sketches, self.num_medians, skimmed=False)


@dataclass
class SkimmedSketchMethod:
    """Ganguly et al.'s skimmed sketch [32]."""

    name: str = "skimmed_sketch"
    num_medians: int | None = None
    threshold_factor: float = 2.0

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> "PreparedSketch":
        sketches = _build_chain_sketches(
            relations, domains, max_budget, rng, self.num_medians
        )
        return PreparedSketch(
            sketches, self.num_medians, skimmed=True, threshold_factor=self.threshold_factor
        )


@dataclass
class PreparedSketch:
    sketches: list[AGMSSketch]
    num_medians: int | None
    skimmed: bool
    threshold_factor: float = 2.0

    def estimate(self, budget: int) -> float:
        s1, s2 = split_budget(budget, self.num_medians)
        sliced = [slice_sketch(sk, s1, s2) for sk in self.sketches]
        if self.skimmed:
            return estimate_multijoin_size_skimmed(
                sliced, threshold_factor=self.threshold_factor
            )
        return sketch_chain(sliced)


# --------------------------------------------------------------------- #
# sampling (the 1988 estimator lineage)
# --------------------------------------------------------------------- #


@dataclass
class SamplingMethod:
    """Bernoulli-sampled cross-product estimator (Hou et al. lineage)."""

    name: str = "sample"

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> "PreparedSample":
        _check_chain(relations, domains)
        return PreparedSample(
            [np.asarray(t) for t in relations], int(rng.integers(1 << 31))
        )


@dataclass
class PreparedSample:
    relations: list[NDArray[Any]]
    seed: int
    _cache: dict[int, float] = field(default_factory=dict)

    def estimate(self, budget: int) -> float:
        # Budget = expected sample size per relation.  Sampling cannot be
        # "truncated" like coefficient synopses, so each budget draws its
        # own (seeded) thinning of the counts: binomial per cell, which is
        # distributionally identical to per-tuple Bernoulli sampling.
        if budget in self._cache:
            return self._cache[budget]
        rng = np.random.default_rng(self.seed + budget)
        samples: list[BernoulliSample] = []
        counters: list[Counter[Any]] = []
        for tensor in self.relations:
            total = int(tensor.sum())
            probability = min(1.0, budget / max(total, 1))
            sample = BernoulliSample(probability, seed=int(rng.integers(1 << 31)))
            counter: Counter[Any] = Counter()
            flat = tensor.ravel()
            nz = np.flatnonzero(flat)
            kept = rng.binomial(flat[nz].astype(np.int64), probability)
            for cell, k in zip(nz, kept):
                if k:
                    idx = np.unravel_index(cell, tensor.shape)
                    key = tuple(int(i) for i in idx)
                    counter[key if len(key) > 1 else key[0]] += int(k)
            sample.stream_size = total
            sample.sampled_size = int(kept.sum())
            samples.append(sample)
            counters.append(counter)
        result = estimate_chain_join_size_samples(samples, counters)
        self._cache[budget] = result
        return result


# --------------------------------------------------------------------- #
# histogram (single-join only)
# --------------------------------------------------------------------- #


@dataclass
class HistogramMethod:
    """Equi-width histogram baseline — single-join queries only."""

    name: str = "histogram"

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> "PreparedHistogram":
        _check_chain(relations, domains)
        if len(relations) != 2:
            raise ValueError("the histogram baseline supports single joins only")
        return PreparedHistogram(
            [np.asarray(t, dtype=float) for t in relations],
            [doms[0] for doms in domains],
        )


@dataclass
class PreparedHistogram:
    counts: list[NDArray[Any]]
    domains: list[Domain]

    def estimate(self, budget: int) -> float:
        hists = [
            EquiWidthHistogram.from_counts(dom, c, budget)
            for c, dom in zip(self.counts, self.domains)
        ]
        return histogram_join(hists[0], hists[1])


# --------------------------------------------------------------------- #
# wavelet (single-join only)
# --------------------------------------------------------------------- #


@dataclass
class WaveletMethod:
    """Haar top-coefficient synopsis baseline — single-join queries only.

    The paper's section 2 wavelet family: keep the ``budget`` largest Haar
    coefficients of each stream's frequency vector.  Note the accounting
    asymmetry the paper points out: unlike cosine coefficients, kept Haar
    coefficients also need their indexes stored.
    """

    name: str = "wavelet"

    def prepare(
        self,
        relations: ChainData,
        domains: ChainDomains,
        max_budget: int,
        rng: np.random.Generator,
    ) -> "PreparedWavelet":
        _check_chain(relations, domains)
        if len(relations) != 2:
            raise ValueError("the wavelet baseline supports single joins only")
        return PreparedWavelet(
            [np.asarray(t, dtype=float) for t in relations],
            [doms[0] for doms in domains],
        )


@dataclass
class PreparedWavelet:
    counts: list[NDArray[Any]]
    domains: list[Domain]

    def estimate(self, budget: int) -> float:
        from ..wavelets.haar import HaarSynopsis
        from ..wavelets.haar import estimate_join_size as haar_join

        synopses = [
            HaarSynopsis.from_counts(dom, c, budget)
            for c, dom in zip(self.counts, self.domains)
        ]
        return haar_join(synopses[0], synopses[1])


def default_methods() -> list[Method]:
    """The paper's section 5 cast: cosine vs the two sketches."""
    return [CosineMethod(), SkimmedSketchMethod(), BasicSketchMethod()]


def extended_methods() -> list[Method]:
    """The paper's cast plus the surveyed sampling baseline."""
    return [CosineMethod(), SkimmedSketchMethod(), BasicSketchMethod(), SamplingMethod()]
