"""Section 5.4 computation-speed measurements.

The paper reports, on a 1.4 GHz Pentium IV:

* cosine: 0.32 microseconds per coefficient per tuple update; ~0.4 ms to
  estimate from 10,000 coefficients;
* sketches: ~1.0 ms to update 10,000 atomic sketches per tuple (faster
  than the cosine update); ~1.6 ms to estimate from 10,000 atomic sketches
  (slower, because of the median-of-means pass).

Absolute numbers are hardware-bound; the *relations* the paper draws —
sketch updates cheaper than cosine updates at equal synopsis size, cosine
estimation cheaper than sketch estimation — are what
``benchmarks/bench_speed.py`` checks on this machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.join import estimate_join_size as cosine_join
from ..core.normalization import Domain
from ..core.synopsis import CosineSynopsis
from ..sketches.basic import AGMSSketch, split_budget
from ..sketches.basic import estimate_join_size as sketch_join
from ..sketches.hashing import SignFamily

#: The synopsis size used by the paper's section 5.4 numbers.
PAPER_SYNOPSIS_SIZE = 10_000


@dataclass(frozen=True)
class SpeedReport:
    """Per-operation wall-clock timings, in seconds."""

    synopsis_size: int
    cosine_update_per_tuple: float
    cosine_update_per_coefficient: float
    cosine_estimate: float
    sketch_update_per_tuple: float
    sketch_update_per_atom: float
    sketch_estimate: float

    def summary(self) -> str:
        us = 1e6
        return "\n".join(
            [
                f"synopsis size: {self.synopsis_size} coefficients / atomic sketches",
                f"cosine  update: {self.cosine_update_per_tuple * 1e3:9.4f} ms/tuple "
                f"({self.cosine_update_per_coefficient * us:.4f} us/coefficient)",
                f"sketch  update: {self.sketch_update_per_tuple * 1e3:9.4f} ms/tuple "
                f"({self.sketch_update_per_atom * us:.4f} us/atomic sketch)",
                f"cosine estimate: {self.cosine_estimate * 1e3:8.4f} ms",
                f"sketch estimate: {self.sketch_estimate * 1e3:8.4f} ms",
            ]
        )


def _time(callable_: Callable[[], object], repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        callable_()
    return (time.perf_counter() - start) / repeats


def measure_speed(
    synopsis_size: int = PAPER_SYNOPSIS_SIZE,
    domain_size: int = 100_000,
    update_repeats: int = 200,
    estimate_repeats: int = 20,
    seed: int = 0,
) -> SpeedReport:
    """Measure the section 5.4 operations at a given synopsis size."""
    rng = np.random.default_rng(seed)
    domain = Domain.of_size(domain_size)

    synopsis_a = CosineSynopsis(domain, order=synopsis_size)
    synopsis_b = CosineSynopsis(domain, order=synopsis_size)
    s1, s2 = split_budget(synopsis_size)
    family = SignFamily(domain_size, s1 * s2, seed=seed)
    sketch_a = AGMSSketch(family, s1, s2)
    sketch_b = AGMSSketch(family, s1, s2)

    warm = rng.integers(0, domain_size, size=(2_000, 1))
    synopsis_a.insert_batch(warm)
    synopsis_b.insert_batch(warm[::-1])
    sketch_a.update_batch(warm[:, 0])
    sketch_b.update_batch(warm[::-1, 0])

    values = rng.integers(0, domain_size, size=update_repeats)
    i = iter(values.tolist())
    cosine_update = _time(lambda: synopsis_a.insert((next(i),)), update_repeats - 1)
    j = iter(values.tolist())
    sketch_update = _time(lambda: sketch_a.update([next(j)]), update_repeats - 1)

    cosine_estimate = _time(lambda: cosine_join(synopsis_a, synopsis_b), estimate_repeats)
    sketch_estimate = _time(lambda: sketch_join(sketch_a, sketch_b), estimate_repeats)

    return SpeedReport(
        synopsis_size=synopsis_size,
        cosine_update_per_tuple=cosine_update,
        cosine_update_per_coefficient=cosine_update / synopsis_size,
        cosine_estimate=cosine_estimate,
        sketch_update_per_tuple=sketch_update,
        sketch_update_per_atom=sketch_update / (s1 * s2),
        sketch_estimate=sketch_estimate,
    )
