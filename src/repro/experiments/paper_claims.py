"""The paper's quantitative claims, as structured data.

Every number the section 5 text quotes is recorded here with its exact
provenance (figure, storage space, method), so the reproduction can put
"paper said / we measured" side by side mechanically instead of in prose.
``scripts/reproduce_all.py`` renders these into EXPERIMENTS.md.

A curiosity the table surfaces: the paper's quoted multipliers do not
always match its quoted percentages (e.g. Figure 3's "24.4x / 49.8x"
against 9.98% vs 92.40%/333.09%, which divide to 9.3x / 33.4x).  The
structured values here are the percentages, with ratios derived by
division; `tests/experiments/test_paper_claims.py` pins the discrepancy
down.

Two caveats the comparison machinery honours:

* paper *spaces* are on its 10^5-value domains; at reproduction scale the
  comparable point is the same *fraction* of the domain, so claims carry
  the paper's domain size and are matched by fraction;
* absolute errors are testbed-bound — the reproduction checks *ordering*
  (who wins) and *factor magnitude* (order of magnitude of the ratios),
  per DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperClaim:
    """One quoted number from the paper's section 5 text."""

    figure: str
    method: str  # "cosine" | "skimmed_sketch" | "basic_sketch"
    space: int  # coefficients / atomic sketches, at paper scale
    domain_size: int  # the paper's join-attribute domain size
    relative_error: float  # as a fraction (0.0998 = 9.98%)

    @property
    def space_fraction(self) -> float:
        """Space as a fraction of the paper's domain — the scale-free axis."""
        return self.space / self.domain_size


#: Every error value quoted in the paper's running text (sections 5.2-5.3).
PAPER_CLAIMS: tuple[PaperClaim, ...] = (
    # §5.2.2.1 — Figure 1 (value read off the text's Figure 5 comparison)
    PaperClaim("fig01", "cosine", 500, 100_000, 0.9658),
    # §5.2.2.1 — Figure 3
    PaperClaim("fig03", "cosine", 500, 100_000, 0.0998),
    PaperClaim("fig03", "skimmed_sketch", 500, 100_000, 0.9240),
    PaperClaim("fig03", "basic_sketch", 500, 100_000, 3.3309),
    # §5.2.2.1 — Figure 5
    PaperClaim("fig05", "cosine", 500, 100_000, 0.5624),
    # §5.2.2.1 — Figure 6
    PaperClaim("fig06", "cosine", 500, 100_000, 0.2421),
    PaperClaim("fig06", "skimmed_sketch", 500, 100_000, 1.5876),
    PaperClaim("fig06", "basic_sketch", 500, 100_000, 8.3785),
    # §5.2.2.2 — Figure 7
    PaperClaim("fig07", "cosine", 500, 1_024, 0.0060),
    PaperClaim("fig07", "skimmed_sketch", 500, 1_024, 0.0798),
    PaperClaim("fig07", "basic_sketch", 500, 1_024, 0.0824),
    # §5.2.2.2 — Figures 9/10 (two-join; attribute space 1024^2)
    PaperClaim("fig09", "cosine", 1_000, 1_024, 0.2627),
    PaperClaim("fig09", "skimmed_sketch", 1_000, 1_024, 1.4246),
    PaperClaim("fig09", "basic_sketch", 1_000, 1_024, 1.4756),
    PaperClaim("fig10", "cosine", 1_000, 1_024, 0.1265),
    PaperClaim("fig10", "skimmed_sketch", 1_000, 1_024, 1.3989),
    PaperClaim("fig10", "basic_sketch", 1_000, 1_024, 1.8037),
    # §5.3.2 — Figure 13 (Age domain 99)
    PaperClaim("fig13", "cosine", 20, 99, 0.0471),
    PaperClaim("fig13", "skimmed_sketch", 20, 99, 0.0808),
    PaperClaim("fig13", "basic_sketch", 20, 99, 0.1605),
    # §5.3.2 — Figure 15 (SSUSEQ domain 50000)
    PaperClaim("fig15", "cosine", 100, 50_000, 0.0012),
    PaperClaim("fig15", "skimmed_sketch", 100, 50_000, 0.1623),
    PaperClaim("fig15", "basic_sketch", 100, 50_000, 0.2212),
    PaperClaim("fig15", "cosine", 1_000, 50_000, 0.0007),
    PaperClaim("fig15", "skimmed_sketch", 1_000, 50_000, 0.0029),
    PaperClaim("fig15", "basic_sketch", 1_000, 50_000, 0.0406),
    # §5.3.2 — Figure 16
    PaperClaim("fig16", "cosine", 1_000, 9_999, 0.066),
    PaperClaim("fig16", "skimmed_sketch", 1_000, 9_999, 0.105),
    PaperClaim("fig16", "basic_sketch", 1_000, 9_999, 0.123),
    # §5.3.2 — Figure 17 (TCP hosts 2395)
    PaperClaim("fig17", "cosine", 100, 2_395, 0.1079),
    PaperClaim("fig17", "skimmed_sketch", 100, 2_395, 0.576),
    PaperClaim("fig17", "basic_sketch", 100, 2_395, 0.601),
    PaperClaim("fig17", "cosine", 900, 2_395, 0.0610),
    PaperClaim("fig17", "skimmed_sketch", 900, 2_395, 0.153),
    PaperClaim("fig17", "basic_sketch", 900, 2_395, 0.226),
    # §5.3.2 — Figure 19
    PaperClaim("fig19", "cosine", 1_500, 2_395, 0.0057),
    PaperClaim("fig19", "skimmed_sketch", 1_500, 2_395, 0.6604),
    PaperClaim("fig19", "basic_sketch", 1_500, 2_395, 0.9372),
)


def claims_for(figure: str) -> list[PaperClaim]:
    """All quoted claims for one figure (possibly empty)."""
    return [c for c in PAPER_CLAIMS if c.figure == figure]


def paper_winner(figure: str, space: int) -> str | None:
    """The paper's best method at a quoted (figure, space), if quoted."""
    candidates = [c for c in PAPER_CLAIMS if c.figure == figure and c.space == space]
    if not candidates:
        return None
    return min(candidates, key=lambda c: c.relative_error).method


def nearest_budget(claim: PaperClaim, budgets: tuple[int, ...], domain_size: int) -> int:
    """The reproduction budget closest to the claim's domain fraction.

    Matches by fraction of the domain (the scale-free axis), not by
    absolute counter counts.
    """
    target = claim.space_fraction * domain_size
    return min(budgets, key=lambda b: abs(b - target))
