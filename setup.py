"""Setup shim for offline editable installs.

The environment ships setuptools 65 without the ``wheel`` package, so PEP
660 editable installs (``pip install -e .``) cannot build a wheel.  This
shim lets ``pip install -e . --no-use-pep517`` (or plain ``pip install -e .``
with newer tooling) fall back to the classic ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
